"""Minimal in-memory image representation and operations.

The original ``thumbnailer`` uses Pillow (Python) or sharp (Node.js) and the
``video-processing`` benchmark drives a static ffmpeg build.  Neither native
dependency is available offline, so this module provides the small subset of
imaging functionality the kernels need — an RGB raster with nearest-neighbour
and box-filter resizing, watermark compositing, and a simple uncompressed
serialisation format — implemented on NumPy arrays.  The operations perform
real per-pixel work so the kernels keep their compute-bound character.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import BenchmarkError

#: Magic prefix of the serialised image format ("SeBS raster image").
_MAGIC = b"SRIM"


@dataclass
class Image:
    """An RGB image backed by a ``(height, width, 3)`` uint8 array."""

    pixels: np.ndarray

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise BenchmarkError("image pixels must have shape (height, width, 3)")
        self.pixels = pixels.astype(np.uint8, copy=False)

    @property
    def width(self) -> int:
        return int(self.pixels.shape[1])

    @property
    def height(self) -> int:
        return int(self.pixels.shape[0])

    @classmethod
    def generate(cls, width: int, height: int, rng: np.random.Generator) -> "Image":
        """Create a synthetic photograph-like image (smooth gradients + noise)."""
        if width <= 0 or height <= 0:
            raise BenchmarkError("image dimensions must be positive")
        ys = np.linspace(0.0, 1.0, height)[:, None]
        xs = np.linspace(0.0, 1.0, width)[None, :]
        red = 255.0 * (0.5 + 0.5 * np.sin(2 * np.pi * (xs + ys)))
        green = 255.0 * np.broadcast_to(xs, (height, width))
        blue = 255.0 * np.broadcast_to(ys, (height, width))
        base = np.stack([red, green, blue], axis=2)
        noise = rng.normal(0.0, 12.0, size=base.shape)
        return cls(np.clip(base + noise, 0, 255).astype(np.uint8))

    def resize(self, new_width: int, new_height: int) -> "Image":
        """Resize with box filtering when shrinking, nearest neighbour otherwise."""
        if new_width <= 0 or new_height <= 0:
            raise BenchmarkError("target dimensions must be positive")
        if new_width <= self.width and new_height <= self.height:
            return self._box_resize(new_width, new_height)
        return self._nearest_resize(new_width, new_height)

    def _nearest_resize(self, new_width: int, new_height: int) -> "Image":
        row_idx = (np.arange(new_height) * self.height // new_height).clip(0, self.height - 1)
        col_idx = (np.arange(new_width) * self.width // new_width).clip(0, self.width - 1)
        return Image(self.pixels[row_idx[:, None], col_idx[None, :], :])

    def _box_resize(self, new_width: int, new_height: int) -> "Image":
        # Average the source pixels falling into each target cell.  Cells are
        # delimited by integer edges; degenerate (empty) cells borrow the next
        # source row/column so every target pixel averages at least one pixel.
        row_edges = np.linspace(0, self.height, new_height + 1).astype(int)
        col_edges = np.linspace(0, self.width, new_width + 1).astype(int)
        row_starts = np.minimum(row_edges[:-1], self.height - 1)
        col_starts = np.minimum(col_edges[:-1], self.width - 1)
        row_counts = np.maximum(1, row_edges[1:] - row_starts)
        col_counts = np.maximum(1, col_edges[1:] - col_starts)
        pixels = self.pixels.astype(np.float64)
        # Sum over row bands, then over column bands, using cumulative sums.
        row_cumsum = np.concatenate([np.zeros((1, self.width, 3)), np.cumsum(pixels, axis=0)], axis=0)
        band_sums = row_cumsum[row_starts + row_counts] - row_cumsum[row_starts]
        col_cumsum = np.concatenate([np.zeros((new_height, 1, 3)), np.cumsum(band_sums, axis=1)], axis=1)
        cell_sums = col_cumsum[:, col_starts + col_counts] - col_cumsum[:, col_starts]
        areas = (row_counts[:, None] * col_counts[None, :]).astype(np.float64)
        out = cell_sums / areas[:, :, None]
        return Image(np.clip(out, 0, 255).astype(np.uint8))

    def thumbnail(self, max_width: int, max_height: int) -> "Image":
        """Shrink preserving aspect ratio so it fits within the bounding box."""
        scale = min(max_width / self.width, max_height / self.height, 1.0)
        return self.resize(max(1, int(self.width * scale)), max(1, int(self.height * scale)))

    def watermark(self, mark: "Image", opacity: float = 0.5, position: tuple[int, int] = (0, 0)) -> "Image":
        """Alpha-blend ``mark`` onto this image at ``position`` (row, col)."""
        if not 0.0 <= opacity <= 1.0:
            raise BenchmarkError("opacity must lie in [0, 1]")
        row, col = position
        if row < 0 or col < 0 or row + mark.height > self.height or col + mark.width > self.width:
            raise BenchmarkError("watermark does not fit at the requested position")
        blended = self.pixels.astype(np.float64).copy()
        region = blended[row : row + mark.height, col : col + mark.width]
        region *= 1.0 - opacity
        region += opacity * mark.pixels.astype(np.float64)
        blended[row : row + mark.height, col : col + mark.width] = region
        return Image(np.clip(blended, 0, 255).astype(np.uint8))

    def to_bytes(self) -> bytes:
        """Serialise to the simple uncompressed SRIM format."""
        header = _MAGIC + self.width.to_bytes(4, "little") + self.height.to_bytes(4, "little")
        return header + self.pixels.tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Image":
        """Deserialise an image produced by :meth:`to_bytes`."""
        if len(data) < 12 or data[:4] != _MAGIC:
            raise BenchmarkError("not a valid SRIM image")
        width = int.from_bytes(data[4:8], "little")
        height = int.from_bytes(data[8:12], "little")
        expected = width * height * 3
        body = data[12:]
        if len(body) != expected:
            raise BenchmarkError("SRIM image payload has the wrong size")
        pixels = np.frombuffer(body, dtype=np.uint8).reshape(height, width, 3)
        return cls(pixels.copy())

    def mean_color(self) -> tuple[float, float, float]:
        means = self.pixels.reshape(-1, 3).mean(axis=0)
        return float(means[0]), float(means[1]), float(means[2])
