"""Multimedia benchmarks: thumbnailer and video-processing."""

from .thumbnailer import ThumbnailerBenchmark
from .video_processing import VideoProcessingBenchmark

__all__ = ["ThumbnailerBenchmark", "VideoProcessingBenchmark"]
