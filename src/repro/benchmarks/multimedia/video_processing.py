"""``video-processing``: watermark a video and convert it to a GIF.

The original benchmark runs a static ffmpeg build — the only non-pip
dependency in the suite (Table 3) — to watermark an uploaded video and
transcode it to a GIF.  ffmpeg is unavailable offline, so the substitute
pipeline performs the equivalent stages on a synthetic raw-frame video: it
decodes the frame container, composites a watermark onto every frame,
temporally subsamples, quantises the colour space and run-length encodes the
result as an animated-GIF-like payload.  The pipeline is deliberately the
heaviest per-invocation CPU consumer in the suite, matching the benchmark's
role as the longest-running application (≈1.5 s warm in Table 4).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ...config import Language
from ...exceptions import BenchmarkError
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile
from .imaging import Image

_MAGIC = b"SVID"


def encode_video(frames: list[np.ndarray]) -> bytes:
    """Serialise a list of equally sized RGB frames into the SVID container."""
    if not frames:
        raise BenchmarkError("video must contain at least one frame")
    height, width, _ = frames[0].shape
    for frame in frames:
        if frame.shape != (height, width, 3):
            raise BenchmarkError("all frames must share the same dimensions")
    header = _MAGIC + len(frames).to_bytes(4, "little") + width.to_bytes(4, "little") + height.to_bytes(4, "little")
    return header + b"".join(np.asarray(frame, dtype=np.uint8).tobytes() for frame in frames)


def decode_video(data: bytes) -> list[np.ndarray]:
    """Deserialise an SVID container into its frames."""
    if len(data) < 16 or data[:4] != _MAGIC:
        raise BenchmarkError("not a valid SVID video")
    count = int.from_bytes(data[4:8], "little")
    width = int.from_bytes(data[8:12], "little")
    height = int.from_bytes(data[12:16], "little")
    frame_bytes = width * height * 3
    body = data[16:]
    if len(body) != count * frame_bytes:
        raise BenchmarkError("SVID payload has the wrong size")
    frames = []
    for index in range(count):
        chunk = body[index * frame_bytes : (index + 1) * frame_bytes]
        frames.append(np.frombuffer(chunk, dtype=np.uint8).reshape(height, width, 3).copy())
    return frames


def generate_video(width: int, height: int, frames: int, rng: np.random.Generator) -> bytes:
    """Create a synthetic moving-gradient video."""
    base = Image.generate(width, height, rng).pixels.astype(np.int16)
    output = []
    for index in range(frames):
        shifted = np.roll(base, shift=index * 3, axis=1)
        flicker = rng.normal(0, 4, size=shifted.shape)
        output.append(np.clip(shifted + flicker, 0, 255).astype(np.uint8))
    return encode_video(output)


def run_length_encode(values: np.ndarray) -> bytes:
    """Run-length encode a flat uint8 array (the GIF-like compression step)."""
    flat = np.asarray(values, dtype=np.uint8).ravel()
    if flat.size == 0:
        return b""
    change_points = np.flatnonzero(np.diff(flat)) + 1
    starts = np.concatenate(([0], change_points))
    ends = np.concatenate((change_points, [flat.size]))
    encoded = bytearray()
    for start, end in zip(starts, ends):
        run = int(end - start)
        value = int(flat[start])
        while run > 255:
            encoded.extend((255, value))
            run -= 255
        encoded.extend((run, value))
    return bytes(encoded)


class VideoProcessingBenchmark(Benchmark):
    """Apply a watermark to a video and convert it to a GIF-like payload."""

    name = "video-processing"
    category = BenchmarkCategory.MULTIMEDIA
    languages = (Language.PYTHON,)
    dependencies = ("ffmpeg",)
    requires_native_dependencies = True

    #: (width, height, frames) of the synthetic source clip per input size.
    _SIZE_TO_CLIP = {
        InputSize.TEST: (96, 72, 8),
        InputSize.SMALL: (320, 240, 24),
        InputSize.LARGE: (640, 480, 60),
    }
    _WATERMARK_SIZE = (48, 24)
    _GIF_FRAME_STRIDE = 3
    _COLOR_LEVELS = 32

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        width, height, frames = self._SIZE_TO_CLIP[size]
        video = generate_video(width, height, frames, context.rng)
        key = f"videos/input-{size.value}.svid"
        context.storage.upload(context.input_bucket, key, video, content_type="video/x-svid")
        context.storage.create_bucket(context.output_bucket)
        return {
            "input_bucket": context.input_bucket,
            "input_key": key,
            "output_bucket": context.output_bucket,
            "output_key": f"videos/output-{size.value}.sgif",
            "watermark_text": "SeBS",
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        data = context.storage.download(str(event["input_bucket"]), str(event["input_key"]))
        frames = decode_video(data)
        height, width, _ = frames[0].shape
        mark_w, mark_h = self._WATERMARK_SIZE
        mark_w = min(mark_w, width)
        mark_h = min(mark_h, height)
        watermark = Image(np.full((mark_h, mark_w, 3), 255, dtype=np.uint8))

        processed: list[bytes] = []
        for index, frame in enumerate(frames):
            image = Image(frame)
            stamped = image.watermark(watermark, opacity=0.4, position=(height - mark_h, width - mark_w))
            if index % self._GIF_FRAME_STRIDE == 0:
                # Colour quantisation to _COLOR_LEVELS levels per channel
                # followed by run-length encoding approximates GIF encoding.
                quantised = (stamped.pixels // (256 // self._COLOR_LEVELS)).astype(np.uint8)
                processed.append(run_length_encode(quantised))
        gif_payload = len(processed).to_bytes(4, "little") + b"".join(
            len(chunk).to_bytes(4, "little") + chunk for chunk in processed
        )
        context.storage.upload(
            str(event["output_bucket"]), str(event["output_key"]), gif_payload, content_type="image/x-sgif"
        )
        return {
            "output_bucket": event["output_bucket"],
            "output_key": event["output_key"],
            "input_frames": len(frames),
            "gif_frames": len(processed),
            "gif_bytes": len(gif_payload),
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 1484 ms, cold 1596 ms — the longest-running kernel.
        width, height, frames = self._SIZE_TO_CLIP[size]
        input_bytes = width * height * 3 * frames + 16
        output_bytes = input_bytes // 8
        return WorkProfile(
            warm_compute_s=1.484 * size.scale,
            cold_init_s=0.112,
            instructions=3.2e9 * size.scale,
            cpu_utilization=0.93,
            peak_memory_mb=250.0 + input_bytes / (1024 * 1024) * 2,
            storage_read_bytes=input_bytes,
            storage_write_bytes=output_bytes,
            storage_read_requests=1,
            storage_write_requests=1,
            output_bytes=512,
            code_package_mb=65.0,
            min_memory_mb=256,
        )
