"""Web-application benchmarks: dynamic-html and uploader."""

from .dynamic_html import DynamicHtmlBenchmark
from .uploader import UploaderBenchmark

__all__ = ["DynamicHtmlBenchmark", "UploaderBenchmark"]
