"""``dynamic-html``: dynamic HTML generation from a predefined template.

The original benchmark renders a jinja2 (Python) or mustache (Node.js)
template with a randomised list of entries — the archetypal "simple website
backend" function with minimal CPU and memory requirements.  This
reproduction ships a small self-contained template engine supporting variable
substitution and loops, so the kernel exercises the same string-processing
code path without external dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping

from ...config import Language
from ...exceptions import BenchmarkError
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile

#: The HTML page template.  ``{{ name }}`` substitutes a variable and the
#: ``{% for item in items %} ... {% endfor %}`` block repeats its body for
#: every element of a list variable, which is the subset of jinja2 used by
#: the original benchmark.
PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
  <head><title>Randomly generated data</title></head>
  <body>
    <p>Welcome {{ username }}!</p>
    <p>Data generated at: {{ cur_time }}</p>
    <p>Requested random numbers:</p>
    <ul>
    {% for item in random_numbers %}<li>{{ item }}</li>
    {% endfor %}
    </ul>
  </body>
</html>
"""


def render_template(template: str, variables: Mapping[str, Any]) -> str:
    """Render ``template`` with ``variables`` (loops first, then scalars)."""
    rendered = template
    # Expand {% for x in seq %} ... {% endfor %} blocks.
    while True:
        start = rendered.find("{% for ")
        if start == -1:
            break
        header_end = rendered.find("%}", start)
        end = rendered.find("{% endfor %}", header_end)
        if header_end == -1 or end == -1:
            raise BenchmarkError("malformed template: unterminated for block")
        header = rendered[start + len("{% for ") : header_end].strip()
        loop_var, _, seq_name = header.partition(" in ")
        loop_var = loop_var.strip()
        seq_name = seq_name.strip()
        body = rendered[header_end + 2 : end]
        sequence = variables.get(seq_name, [])
        expanded = "".join(body.replace("{{ " + loop_var + " }}", str(item)) for item in sequence)
        rendered = rendered[:start] + expanded + rendered[end + len("{% endfor %}") :]
    # Substitute scalar variables.
    for key, value in variables.items():
        rendered = rendered.replace("{{ " + key + " }}", str(value))
    return rendered


class DynamicHtmlBenchmark(Benchmark):
    """Render an HTML page with a random list of numbers."""

    name = "dynamic-html"
    category = BenchmarkCategory.WEBAPPS
    languages = (Language.PYTHON, Language.NODEJS)
    dependencies = ("jinja2",)

    #: Number of random list entries per input size.
    _SIZE_TO_ENTRIES = {InputSize.TEST: 10, InputSize.SMALL: 1000, InputSize.LARGE: 100000}

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        return {
            "username": "sebs-user",
            "random_len": self._SIZE_TO_ENTRIES[size],
            "seed": int(context.rng.integers(0, 2**31 - 1)),
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        import numpy as np

        count = int(event["random_len"])
        if count <= 0:
            raise BenchmarkError("random_len must be positive")
        rng = np.random.default_rng(int(event.get("seed", 0)))
        numbers = rng.integers(0, 1_000_000, size=count)
        html = render_template(
            PAGE_TEMPLATE,
            {
                "username": event.get("username", "anonymous"),
                "cur_time": f"t={event.get('seed', 0)}",
                "random_numbers": numbers.tolist(),
            },
        )
        return {"size": len(html), "checksum": int(np.sum(numbers) % 2**32), "preview": html[:128]}

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: Python warm 1.19 ms, cold 130.4 ms, 7.02 M instructions,
        # 99.4% CPU; Node.js warm 0.28 ms, cold 84 ms.
        if language is Language.NODEJS:
            base = WorkProfile(
                warm_compute_s=0.00028,
                cold_init_s=0.084,
                instructions=2.5e6,
                cpu_utilization=0.974,
                peak_memory_mb=25.0,
                output_bytes=6_000,
                code_package_mb=1.0,
            )
        else:
            base = WorkProfile(
                warm_compute_s=0.00119,
                cold_init_s=0.129,
                instructions=7.02e6,
                cpu_utilization=0.994,
                peak_memory_mb=30.0,
                output_bytes=6_000,
                code_package_mb=1.5,
            )
        return base.scaled(size.scale)
