"""``uploader`` (storage-uploader): fetch a file from a URL and store it.

The original kernel downloads a file from a user-supplied URL and uploads it
to cloud storage — an I/O-bound function whose runtime is dominated by
network and storage bandwidth (CPU utilisation of only 34% in Table 4).  As
this environment has no network, the "download" synthesises a deterministic
byte stream of the requested size, preserving the storage-upload code path
and the I/O-bound character of the benchmark.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from ...config import Language
from ...exceptions import BenchmarkError
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile


def synthesize_download(url: str, num_bytes: int) -> bytes:
    """Produce a deterministic pseudo-download of ``num_bytes`` for ``url``.

    The byte stream is derived from repeated SHA-256 hashing of the URL, so
    the same URL always yields the same content — useful for asserting
    checksums in tests — while still exercising a realistic amount of byte
    handling work.
    """
    if num_bytes < 0:
        raise BenchmarkError("download size must be non-negative")
    chunks: list[bytes] = []
    counter = 0
    produced = 0
    seed = url.encode("utf-8")
    while produced < num_bytes:
        digest = hashlib.sha256(seed + counter.to_bytes(8, "little")).digest()
        chunks.append(digest)
        produced += len(digest)
        counter += 1
    return b"".join(chunks)[:num_bytes]


class UploaderBenchmark(Benchmark):
    """Download a (synthetic) file and upload it to persistent storage."""

    name = "uploader"
    category = BenchmarkCategory.WEBAPPS
    languages = (Language.PYTHON, Language.NODEJS)
    dependencies = ("request",)

    #: Download size in bytes per input size preset.
    _SIZE_TO_BYTES = {
        InputSize.TEST: 64 * 1024,
        InputSize.SMALL: 1024 * 1024,
        InputSize.LARGE: 16 * 1024 * 1024,
    }

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        context.storage.create_bucket(context.output_bucket)
        return {
            "url": "https://speed.example.org/files/package.zip",
            "download_bytes": self._SIZE_TO_BYTES[size],
            "bucket": context.output_bucket,
            "key": f"uploads/package-{size.value}.zip",
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        url = str(event["url"])
        num_bytes = int(event["download_bytes"])
        bucket = str(event["bucket"])
        key = str(event["key"])
        data = synthesize_download(url, num_bytes)
        checksum = hashlib.sha256(data).hexdigest()
        context.storage.upload(bucket, key, data, content_type="application/zip")
        return {"bucket": bucket, "key": key, "bytes": len(data), "sha256": checksum}

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: Python warm 126.6 ms at 34% CPU (I/O bound), 94.7 M
        # instructions; Node.js warm 135.3 ms.  Most of the wall time is the
        # download/upload, captured by the storage byte counts below.
        download = self._SIZE_TO_BYTES[size]
        if language is Language.NODEJS:
            compute = 0.050
            cold = 0.247
            instructions = 6.0e7
        else:
            compute = 0.043
            cold = 0.110
            instructions = 9.47e7
        return WorkProfile(
            warm_compute_s=compute * size.scale,
            cold_init_s=cold,
            instructions=instructions * size.scale,
            cpu_utilization=0.34 if language is Language.PYTHON else 0.417,
            peak_memory_mb=40.0 + download / (1024 * 1024),
            storage_read_bytes=download,
            storage_write_bytes=download,
            storage_read_requests=1,
            storage_write_requests=1,
            output_bytes=256,
            code_package_mb=2.0,
        )
