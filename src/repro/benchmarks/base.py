"""Benchmark abstractions shared by every SeBS application.

A benchmark consists of three pieces, mirroring the original toolkit:

* an **input generator** that produces invocation payloads of a requested
  size and uploads any required input files to persistent storage;
* a **kernel** — the actual function body, written once in a high-level
  language and wrapped by provider-specific entry points; here the kernel is
  a plain Python callable receiving a JSON-like event and a
  :class:`BenchmarkContext`;
* a **work profile** describing the kernel's resource requirements
  (reference compute time, peak memory, storage traffic, output size, cold
  initialisation cost, code-package size).  The cloud simulator uses the
  profile to derive execution durations under arbitrary memory allocations,
  while local characterization (Table 4) measures the kernel for real.
"""

from __future__ import annotations

import abc
import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

import numpy as np

from ..config import Language
from ..exceptions import BenchmarkError, InputGenerationError
from ..storage.object_store import ObjectStore


class BenchmarkCategory(str, enum.Enum):
    """Workload categories from Table 3."""

    WEBAPPS = "webapps"
    MULTIMEDIA = "multimedia"
    UTILITIES = "utilities"
    INFERENCE = "inference"
    SCIENTIFIC = "scientific"


class InputSize(str, enum.Enum):
    """Input-size presets supported by every benchmark's generator."""

    TEST = "test"
    SMALL = "small"
    LARGE = "large"

    @property
    def scale(self) -> float:
        """Relative scale factor with respect to the small size."""
        return {InputSize.TEST: 0.1, InputSize.SMALL: 1.0, InputSize.LARGE: 4.0}[self]


@dataclass(frozen=True)
class WorkProfile:
    """Calibrated resource requirements of a benchmark kernel.

    The reference values correspond to the paper's local characterization on
    an AWS ``z1d.metal`` machine (Table 4) and to warm cloud executions at a
    memory size with a full vCPU.

    Attributes
    ----------
    warm_compute_s:
        Pure compute time of a warm execution at a full CPU share.
    cold_init_s:
        Additional initialisation time of a cold execution (interpreter and
        dependency import, model deserialisation, …) at a full CPU share.
    instructions:
        Retired-instruction estimate of a warm execution (Table 4).
    cpu_utilization:
        Fraction of wall-clock time spent on the CPU; I/O-bound kernels such
        as ``uploader`` have low values.
    peak_memory_mb:
        Peak resident memory of the kernel.
    storage_read_bytes / storage_write_bytes:
        Persistent-storage traffic of one invocation.
    storage_read_requests / storage_write_requests:
        Number of storage API calls of one invocation.
    output_bytes:
        Size of the response returned to the client (drives the egress-cost
        analysis of Section 6.3 Q4).
    code_package_mb:
        Size of the deployment package (drives cold-start deployment time).
    min_memory_mb:
        Smallest allocation under which the kernel fits; smaller allocations
        fail with an out-of-memory error (observed on GCP, Section 6.2 Q3).
    """

    warm_compute_s: float
    cold_init_s: float
    instructions: float
    cpu_utilization: float
    peak_memory_mb: float
    storage_read_bytes: int = 0
    storage_write_bytes: int = 0
    storage_read_requests: int = 0
    storage_write_requests: int = 0
    output_bytes: int = 1024
    code_package_mb: float = 1.0
    min_memory_mb: int = 128

    def scaled(self, factor: float) -> "WorkProfile":
        """Return a profile with compute, I/O and output scaled by ``factor``."""
        return replace(
            self,
            warm_compute_s=self.warm_compute_s * factor,
            instructions=self.instructions * factor,
            storage_read_bytes=int(self.storage_read_bytes * factor),
            storage_write_bytes=int(self.storage_write_bytes * factor),
            output_bytes=max(1, int(self.output_bytes * factor)),
        )

    @property
    def io_bound(self) -> bool:
        """Heuristic used in reporting: CPU utilisation below 60%."""
        return self.cpu_utilization < 0.6


@dataclass
class BenchmarkContext:
    """Execution context handed to a benchmark kernel.

    Mirrors what the SeBS function wrapper provides on a real platform:
    access to persistent storage through the abstract interface, the input
    bucket names, and a seeded random generator for kernels that synthesise
    data on the fly.
    """

    storage: ObjectStore
    input_bucket: str = "sebs-input"
    output_bucket: str = "sebs-output"
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    environment: Mapping[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchmarkResult:
    """Outcome of running a benchmark kernel locally."""

    benchmark: str
    result: Mapping[str, Any]
    output_bytes: int

    def to_json(self) -> str:
        return json.dumps({"benchmark": self.benchmark, "result": dict(self.result)})


class Benchmark(abc.ABC):
    """Base class of every SeBS application."""

    #: Unique benchmark name, e.g. ``"dynamic-html"``.
    name: str = ""
    #: Workload category (Table 3).
    category: BenchmarkCategory = BenchmarkCategory.WEBAPPS
    #: Languages in which the original suite implements the benchmark.
    languages: tuple[Language, ...] = (Language.PYTHON,)
    #: Third-party dependencies listed in Table 3 (informational).
    dependencies: tuple[str, ...] = ()
    #: Whether the benchmark requires a non-pip/native dependency (ffmpeg).
    requires_native_dependencies: bool = False

    def __init__(self) -> None:
        if not self.name:
            raise BenchmarkError(f"{type(self).__name__} does not define a benchmark name")

    # ------------------------------------------------------------------ API
    @abc.abstractmethod
    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        """Create an invocation payload of the requested ``size``.

        Implementations may upload auxiliary files (images, videos, archives)
        to ``context.storage`` and reference them from the returned payload,
        exactly as the original generators upload inputs to cloud buckets.
        """

    @abc.abstractmethod
    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        """Execute the benchmark kernel for ``event`` and return its result."""

    @abc.abstractmethod
    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        """Return the calibrated work profile for ``size`` and ``language``."""

    # ----------------------------------------------------------- conveniences
    def execute(self, event: Mapping[str, Any], context: BenchmarkContext) -> BenchmarkResult:
        """Run the kernel and wrap its output in a :class:`BenchmarkResult`."""
        result = self.run(event, context)
        if not isinstance(result, Mapping):
            raise BenchmarkError(f"benchmark {self.name!r} returned a non-mapping result")
        encoded = json.dumps(result, default=str).encode("utf-8")
        return BenchmarkResult(benchmark=self.name, result=result, output_bytes=len(encoded))

    def supported_sizes(self) -> tuple[InputSize, ...]:
        return (InputSize.TEST, InputSize.SMALL, InputSize.LARGE)

    def validate_size(self, size: InputSize) -> None:
        if size not in self.supported_sizes():
            raise InputGenerationError(f"benchmark {self.name!r} does not support input size {size.value!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Benchmark {self.name} ({self.category.value})>"
