"""Scientific benchmarks: irregular graph computations (BFS, PageRank, MST)."""

from .graph_generation import Graph, generate_rmat_graph, generate_random_graph
from .algorithms import breadth_first_search, pagerank, minimum_spanning_tree
from .graph_benchmarks import GraphBFSBenchmark, GraphMSTBenchmark, GraphPageRankBenchmark

__all__ = [
    "Graph",
    "generate_rmat_graph",
    "generate_random_graph",
    "breadth_first_search",
    "pagerank",
    "minimum_spanning_tree",
    "GraphBFSBenchmark",
    "GraphPageRankBenchmark",
    "GraphMSTBenchmark",
]
