"""Graph algorithms used by the scientific benchmarks.

Three problems, as selected in Section 4.2:

* **Breadth-First Search** — representative of graph traversal, basis of the
  Graph500 benchmark, with potentially severe work imbalance across
  iterations;
* **PageRank** — power-iteration centrality, representative of iterative,
  data-intensive ranking computations;
* **Minimum Spanning Tree** — Kruskal's algorithm with a union-find,
  representative of graph optimisation problems.

All three are implemented from scratch; the test suite cross-checks them
against :mod:`networkx` reference implementations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ...exceptions import BenchmarkError
from .graph_generation import Graph


@dataclass(frozen=True)
class BFSResult:
    """Distances (in hops) and parents of a breadth-first traversal."""

    source: int
    distances: list[int]
    parents: list[int]
    visited_count: int
    max_depth: int
    frontier_sizes: list[int]


def breadth_first_search(graph: Graph, source: int) -> BFSResult:
    """Run BFS from ``source``; unreachable vertices get distance -1."""
    if not 0 <= source < graph.num_vertices:
        raise BenchmarkError(f"source vertex {source} outside the graph")
    distances = [-1] * graph.num_vertices
    parents = [-1] * graph.num_vertices
    distances[source] = 0
    frontier = deque([source])
    frontier_sizes = []
    visited = 1
    depth = 0
    while frontier:
        frontier_sizes.append(len(frontier))
        next_frontier: deque[int] = deque()
        for _ in range(len(frontier)):
            vertex = frontier.popleft()
            for neighbor, _weight in graph.neighbors(vertex):
                if distances[neighbor] == -1:
                    distances[neighbor] = distances[vertex] + 1
                    parents[neighbor] = vertex
                    visited += 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
        if frontier:
            depth += 1
    return BFSResult(
        source=source,
        distances=distances,
        parents=parents,
        visited_count=visited,
        max_depth=depth,
        frontier_sizes=frontier_sizes,
    )


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
) -> tuple[np.ndarray, int]:
    """Power-iteration PageRank; returns (ranks, iterations executed).

    Undirected graphs are treated as symmetric directed graphs.  Dangling
    vertices (no outgoing edges) redistribute their mass uniformly, matching
    the standard formulation (and networkx's behaviour).
    """
    if not 0.0 < damping < 1.0:
        raise BenchmarkError("damping factor must lie in (0, 1)")
    n = graph.num_vertices
    if n == 0:
        raise BenchmarkError("cannot rank an empty graph")
    ranks = np.full(n, 1.0 / n)
    out_degree = np.array([graph.degree(v) for v in range(n)], dtype=np.float64)
    dangling = out_degree == 0

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_ranks = np.full(n, (1.0 - damping) / n)
        dangling_mass = damping * ranks[dangling].sum() / n
        new_ranks += dangling_mass
        for vertex in range(n):
            if out_degree[vertex] == 0:
                continue
            share = damping * ranks[vertex] / out_degree[vertex]
            for neighbor, _weight in graph.neighbors(vertex):
                new_ranks[neighbor] += share
        delta = np.abs(new_ranks - ranks).sum()
        ranks = new_ranks
        if delta < tolerance:
            break
    return ranks, iterations


class _UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    def __init__(self, size: int):
        self._parent = list(range(size))
        self._rank = [0] * size

    def find(self, vertex: int) -> int:
        root = vertex
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[vertex] != root:
            self._parent[vertex], vertex = root, self._parent[vertex]
        return root

    def union(self, a: int, b: int) -> bool:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        return True


@dataclass(frozen=True)
class MSTResult:
    """A minimum spanning forest."""

    edges: list[tuple[int, int, float]]
    total_weight: float
    num_components: int


def minimum_spanning_tree(graph: Graph) -> MSTResult:
    """Kruskal's algorithm; on disconnected graphs returns a spanning forest."""
    if graph.num_vertices == 0:
        raise BenchmarkError("cannot compute the MST of an empty graph")
    edges = sorted(graph.edges(), key=lambda edge: edge[2])
    union_find = _UnionFind(graph.num_vertices)
    tree_edges: list[tuple[int, int, float]] = []
    total = 0.0
    for u, v, w in edges:
        if union_find.union(u, v):
            tree_edges.append((u, v, w))
            total += w
    components = graph.num_vertices - len(tree_edges)
    return MSTResult(edges=tree_edges, total_weight=total, num_components=components)
