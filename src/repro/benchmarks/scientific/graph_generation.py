"""Graph data structure and synthetic graph generators.

The scientific benchmarks of the suite operate on irregular graphs.  The
original implementation uses ``igraph`` with synthetic power-law inputs; here
the graph is a plain CSR-style adjacency structure and generators produce
either uniform random (Erdős–Rényi-style) graphs or R-MAT graphs, the
recursive-matrix model used by Graph500 that yields the skewed degree
distributions which make BFS work-imbalanced (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...exceptions import BenchmarkError


@dataclass
class Graph:
    """An undirected or directed graph stored as adjacency lists.

    Attributes
    ----------
    num_vertices:
        Number of vertices (identifiers 0..num_vertices-1).
    adjacency:
        ``adjacency[v]`` is a list of ``(neighbor, weight)`` tuples.
    directed:
        Whether edges are directed.
    """

    num_vertices: int
    adjacency: list[list[tuple[int, float]]]
    directed: bool = False

    def __post_init__(self) -> None:
        if self.num_vertices < 0:
            raise BenchmarkError("graph cannot have a negative number of vertices")
        if len(self.adjacency) != self.num_vertices:
            raise BenchmarkError("adjacency list length must equal num_vertices")

    @property
    def num_edges(self) -> int:
        total = sum(len(neighbors) for neighbors in self.adjacency)
        return total if self.directed else total // 2

    def degree(self, vertex: int) -> int:
        return len(self.adjacency[vertex])

    def neighbors(self, vertex: int) -> list[tuple[int, float]]:
        return self.adjacency[vertex]

    def edges(self) -> list[tuple[int, int, float]]:
        """Return edges as (u, v, weight); undirected edges appear once (u < v)."""
        result = []
        for u, neighbors in enumerate(self.adjacency):
            for v, w in neighbors:
                if self.directed or u < v:
                    result.append((u, v, w))
        return result

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: list[tuple[int, int, float]] | list[tuple[int, int]],
        directed: bool = False,
    ) -> "Graph":
        """Build a graph from an edge list (weights default to 1.0)."""
        adjacency: list[list[tuple[int, float]]] = [[] for _ in range(num_vertices)]
        for edge in edges:
            if len(edge) == 3:
                u, v, w = edge  # type: ignore[misc]
            else:
                u, v = edge  # type: ignore[misc]
                w = 1.0
            if not (0 <= u < num_vertices and 0 <= v < num_vertices):
                raise BenchmarkError(f"edge ({u}, {v}) references a vertex outside the graph")
            adjacency[u].append((int(v), float(w)))
            if not directed and u != v:
                adjacency[v].append((int(u), float(w)))
        return cls(num_vertices=num_vertices, adjacency=adjacency, directed=directed)

    def to_edge_payload(self) -> dict:
        """Serialise the graph into a JSON-friendly payload for invocations."""
        return {
            "num_vertices": self.num_vertices,
            "directed": self.directed,
            "edges": [[u, v, w] for u, v, w in self.edges()],
        }

    @classmethod
    def from_edge_payload(cls, payload: dict) -> "Graph":
        return cls.from_edges(
            num_vertices=int(payload["num_vertices"]),
            edges=[(int(u), int(v), float(w)) for u, v, w in payload["edges"]],
            directed=bool(payload.get("directed", False)),
        )


def generate_random_graph(
    num_vertices: int,
    average_degree: float,
    rng: np.random.Generator,
    weighted: bool = True,
) -> Graph:
    """Generate a uniformly random (Erdős–Rényi-style) undirected graph."""
    if num_vertices <= 0:
        raise BenchmarkError("graph must have at least one vertex")
    if average_degree < 0:
        raise BenchmarkError("average degree must be non-negative")
    num_edges = int(num_vertices * average_degree / 2)
    sources = rng.integers(0, num_vertices, size=num_edges)
    targets = rng.integers(0, num_vertices, size=num_edges)
    weights = rng.uniform(0.1, 10.0, size=num_edges) if weighted else np.ones(num_edges)
    edges = []
    seen: set[tuple[int, int]] = set()
    for u, v, w in zip(sources.tolist(), targets.tolist(), weights.tolist()):
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append((u, v, float(w)))
    return Graph.from_edges(num_vertices, edges, directed=False)


def generate_rmat_graph(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    weighted: bool = True,
) -> Graph:
    """Generate an R-MAT graph with 2**scale vertices (Graph500 parameters).

    The recursive-matrix procedure drops each edge into one of four quadrants
    with probabilities (a, b, c, d), recursing ``scale`` times; the resulting
    degree distribution is highly skewed, producing the work imbalance across
    BFS iterations the paper highlights for irregular workloads.
    """
    if scale <= 0 or scale > 24:
        raise BenchmarkError("R-MAT scale must lie in [1, 24]")
    if edge_factor <= 0:
        raise BenchmarkError("edge factor must be positive")
    d = 1.0 - a - b - c
    if d < 0:
        raise BenchmarkError("R-MAT probabilities must sum to at most 1")
    num_vertices = 1 << scale
    num_edges = num_vertices * edge_factor
    rows = np.zeros(num_edges, dtype=np.int64)
    cols = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        offset = 1 << (scale - level - 1)
        draws = rng.random(num_edges)
        go_right = (draws >= a + c) & (draws < 1.0)
        right_within = draws >= a + c
        go_down = ((draws >= a) & (draws < a + c)) | (draws >= a + b + c)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        in_b = (draws >= a) & (draws < a + b)
        in_c = (draws >= a + b) & (draws < a + b + c)
        in_d = draws >= a + b + c
        cols += offset * (in_b | in_d)
        rows += offset * (in_c | in_d)
        del go_right, right_within, go_down
    weights = rng.uniform(0.1, 10.0, size=num_edges) if weighted else np.ones(num_edges)
    # Permute vertex identifiers so that high-degree vertices are not clustered
    # at small ids (standard Graph500 post-processing).
    permutation = rng.permutation(num_vertices)
    rows = permutation[rows]
    cols = permutation[cols]
    edges = []
    seen: set[tuple[int, int]] = set()
    for u, v, w in zip(rows.tolist(), cols.tolist(), weights.tolist()):
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        edges.append((u, v, float(w)))
    return Graph.from_edges(num_vertices, edges, directed=False)
