"""Serverless wrappers of the graph algorithms: graph-bfs, graph-pagerank, graph-mst.

Each benchmark generates an R-MAT graph of a size determined by the input
preset, ships it in the invocation payload (the original benchmarks likewise
generate graph data per invocation), runs the corresponding algorithm and
returns a summary.  ``graph-bfs`` returns a comparatively large response
(≈78 kB in the paper), which drives the data-transfer cost analysis of
Section 6.3 Q4.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from ...config import Language
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile
from .algorithms import breadth_first_search, minimum_spanning_tree, pagerank
from .graph_generation import Graph, generate_rmat_graph


class _GraphBenchmarkBase(Benchmark):
    """Shared input generation for the three graph benchmarks."""

    category = BenchmarkCategory.SCIENTIFIC
    languages = (Language.PYTHON,)
    dependencies = ("igraph",)

    #: R-MAT scale (log2 of the vertex count) per input preset.
    _SIZE_TO_SCALE = {InputSize.TEST: 7, InputSize.SMALL: 10, InputSize.LARGE: 13}
    _EDGE_FACTOR = 8

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        scale = self._SIZE_TO_SCALE[size]
        graph = generate_rmat_graph(scale=scale, edge_factor=self._EDGE_FACTOR, rng=context.rng)
        return {
            "graph": graph.to_edge_payload(),
            "size": size.value,
            "seed": int(context.rng.integers(0, 2**31 - 1)),
        }


class GraphBFSBenchmark(_GraphBenchmarkBase):
    """Breadth-first search over an R-MAT graph."""

    name = "graph-bfs"

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        graph = Graph.from_edge_payload(dict(event["graph"]))
        rng = np.random.default_rng(int(event.get("seed", 0)))
        # Start from a vertex with at least one neighbour so the traversal is
        # non-trivial (Graph500 uses the same convention for search keys).
        candidates = [v for v in range(graph.num_vertices) if graph.degree(v) > 0]
        source = int(rng.choice(candidates)) if candidates else 0
        result = breadth_first_search(graph, source)
        payload = {
            "source": result.source,
            "visited": result.visited_count,
            "max_depth": result.max_depth,
            "frontier_sizes": result.frontier_sizes,
            "distances": result.distances,
        }
        return {
            "result": payload,
            "output_size": len(json.dumps(payload)),
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 36.5 ms, cold 123 ms, 222 M instructions, 99% CPU.
        # Output ≈ 78 kB (Section 6.3 Q4: returning graph data dominates
        # transfer cost).
        return WorkProfile(
            warm_compute_s=0.0365 * size.scale,
            cold_init_s=0.0865,
            instructions=2.22e8 * size.scale,
            cpu_utilization=0.99,
            peak_memory_mb=70.0,
            output_bytes=78_000,
            code_package_mb=8.0,
        )


class GraphPageRankBenchmark(_GraphBenchmarkBase):
    """PageRank over an R-MAT graph."""

    name = "graph-pagerank"

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        graph = Graph.from_edge_payload(dict(event["graph"]))
        ranks, iterations = pagerank(graph, damping=0.85, max_iterations=50, tolerance=1e-10)
        top = np.argsort(ranks)[::-1][:10]
        return {
            "iterations": iterations,
            "top_vertices": [{"vertex": int(v), "rank": float(ranks[v])} for v in top],
            "rank_sum": float(ranks.sum()),
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 106 ms, cold 194 ms, 794 M instructions, 99% CPU.
        return WorkProfile(
            warm_compute_s=0.106 * size.scale,
            cold_init_s=0.088,
            instructions=7.94e8 * size.scale,
            cpu_utilization=0.99,
            peak_memory_mb=120.0,
            output_bytes=1_500,
            code_package_mb=8.0,
        )


class GraphMSTBenchmark(_GraphBenchmarkBase):
    """Minimum spanning tree (Kruskal) over an R-MAT graph."""

    name = "graph-mst"

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        graph = Graph.from_edge_payload(dict(event["graph"]))
        result = minimum_spanning_tree(graph)
        return {
            "tree_edges": len(result.edges),
            "total_weight": round(result.total_weight, 6),
            "num_components": result.num_components,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 38 ms, cold 125 ms, 234 M instructions, 99% CPU.
        return WorkProfile(
            warm_compute_s=0.038 * size.scale,
            cold_init_s=0.087,
            instructions=2.34e8 * size.scale,
            cpu_utilization=0.99,
            peak_memory_mb=80.0,
            output_bytes=400,
            code_package_mb=8.0,
        )
