"""``data-vis``: DNA sequence visualisation backend (DNAvisualization.org).

The original function receives DNA data, transforms it with the ``squiggle``
library into a two-dimensional visualisation and caches the result in
storage.  The squiggle method is simple enough to implement directly: walking
the sequence, an ``A`` moves the trace up then down, a ``T`` down then up, a
``C`` down and a ``G`` up, producing an (x, y) polyline whose shape encodes
the sequence.  The kernel downsamples the polyline for plotting and uploads
the serialised visualisation, preserving the original's mix of string
processing, numeric work and storage writes.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from ...config import Language
from ...exceptions import BenchmarkError
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile

_BASES = np.array(list("ACGT"))


def generate_sequence(length: int, rng: np.random.Generator) -> str:
    """Generate a random DNA sequence of ``length`` bases."""
    if length <= 0:
        raise BenchmarkError("sequence length must be positive")
    return "".join(rng.choice(_BASES, size=length).tolist())


def squiggle_transform(sequence: str) -> tuple[np.ndarray, np.ndarray]:
    """Compute the squiggle (x, y) visualisation of a DNA sequence.

    Following Lee (Bioinformatics 2018): each base contributes two x steps of
    0.5; ``A`` rises then falls, ``T`` falls then rises, ``C`` steps down and
    ``G`` steps up.  Returns arrays of length ``2 * len(sequence) + 1``.
    """
    sequence = sequence.upper()
    n = len(sequence)
    if n == 0:
        raise BenchmarkError("sequence must be non-empty")
    xs = np.arange(2 * n + 1, dtype=np.float64) * 0.5
    deltas = np.zeros(2 * n, dtype=np.float64)
    encoded = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    is_a = encoded == ord("A")
    is_t = encoded == ord("T")
    is_c = encoded == ord("C")
    is_g = encoded == ord("G")
    if not np.all(is_a | is_t | is_c | is_g):
        raise BenchmarkError("sequence contains characters other than A, C, G, T")
    deltas[0::2] = 1.0 * is_a - 1.0 * is_t - 0.5 * is_c + 0.5 * is_g
    deltas[1::2] = -1.0 * is_a + 1.0 * is_t - 0.5 * is_c + 0.5 * is_g
    ys = np.concatenate(([0.0], np.cumsum(deltas)))
    return xs, ys


def downsample(xs: np.ndarray, ys: np.ndarray, max_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Reduce the polyline to at most ``max_points`` points for plotting."""
    if max_points <= 1:
        raise BenchmarkError("max_points must be greater than one")
    if xs.size <= max_points:
        return xs, ys
    idx = np.linspace(0, xs.size - 1, max_points).astype(int)
    return xs[idx], ys[idx]


class DataVisBenchmark(Benchmark):
    """Visualise a DNA sequence with the squiggle transform."""

    name = "data-vis"
    category = BenchmarkCategory.UTILITIES
    languages = (Language.PYTHON,)
    dependencies = ("squiggle",)

    _SIZE_TO_BASES = {
        InputSize.TEST: 1_000,
        InputSize.SMALL: 100_000,
        InputSize.LARGE: 1_000_000,
    }
    _MAX_PLOT_POINTS = 4_096

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        sequence = generate_sequence(self._SIZE_TO_BASES[size], context.rng)
        key = f"dna/sequence-{size.value}.txt"
        context.storage.upload(context.input_bucket, key, sequence.encode("ascii"), content_type="text/plain")
        context.storage.create_bucket(context.output_bucket)
        return {
            "input_bucket": context.input_bucket,
            "input_key": key,
            "output_bucket": context.output_bucket,
            "output_key": f"dna/visualization-{size.value}.json",
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        sequence = context.storage.download(str(event["input_bucket"]), str(event["input_key"])).decode("ascii")
        xs, ys = squiggle_transform(sequence)
        plot_x, plot_y = downsample(xs, ys, self._MAX_PLOT_POINTS)
        payload = json.dumps(
            {
                "length": len(sequence),
                "points": len(plot_x),
                "x": np.round(plot_x, 3).tolist(),
                "y": np.round(plot_y, 3).tolist(),
            }
        ).encode("utf-8")
        context.storage.upload(
            str(event["output_bucket"]), str(event["output_key"]), payload, content_type="application/json"
        )
        return {
            "output_bucket": event["output_bucket"],
            "output_key": event["output_key"],
            "sequence_length": len(sequence),
            "visualization_bytes": len(payload),
            "gc_content": round((sequence.count("G") + sequence.count("C")) / len(sequence), 4),
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        bases = self._SIZE_TO_BASES[size]
        return WorkProfile(
            warm_compute_s=0.090 * size.scale,
            cold_init_s=0.180,
            instructions=3.0e8 * size.scale,
            cpu_utilization=0.92,
            peak_memory_mb=80.0 + bases * 32 / (1024 * 1024),
            storage_read_bytes=bases,
            storage_write_bytes=150_000,
            storage_read_requests=1,
            storage_write_requests=1,
            output_bytes=1_024,
            code_package_mb=18.0,
        )
