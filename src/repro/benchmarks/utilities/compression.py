"""``compression``: zip a project of files and return the archive.

The original kernel compresses the files of a LaTeX template project
(acmart-master) fetched from storage and writes the resulting archive back —
the kind of backend processing an online document suite offloads to a
function.  Table 4 characterises it as a long-running, mostly compute-bound
kernel (470 ms warm, 88% CPU) with substantial storage traffic, and
Section 6.2/6.3 use it as the canonical "long function with stragglers"
example.  The kernel below generates a deterministic project of text files,
stores them, then zips them with :mod:`zipfile` (deflate) in memory.
"""

from __future__ import annotations

import io
import zipfile
from typing import Any, Mapping

import numpy as np

from ...config import Language
from ..base import Benchmark, BenchmarkCategory, BenchmarkContext, InputSize, WorkProfile

_WORDS = (
    "serverless function benchmark cloud latency storage container sandbox "
    "memory invocation trigger provider experiment workload measurement cost"
).split()


def generate_project_files(num_files: int, file_size: int, rng: np.random.Generator) -> dict[str, bytes]:
    """Create a synthetic LaTeX-project-like set of text files."""
    files: dict[str, bytes] = {}
    for index in range(num_files):
        words = rng.choice(_WORDS, size=max(1, file_size // 8))
        text = " ".join(words.tolist())
        name = f"sections/section-{index:03d}.tex" if index else "acmart-main.tex"
        files[name] = text.encode("utf-8")[:file_size]
    return files


class CompressionBenchmark(Benchmark):
    """Compress a set of files from storage into a zip archive."""

    name = "compression"
    category = BenchmarkCategory.UTILITIES
    languages = (Language.PYTHON,)
    dependencies = ()

    #: (number of files, bytes per file) for each input size preset.
    _SIZE_TO_PROJECT = {
        InputSize.TEST: (5, 8 * 1024),
        InputSize.SMALL: (40, 64 * 1024),
        InputSize.LARGE: (120, 256 * 1024),
    }

    def generate_input(self, size: InputSize, context: BenchmarkContext) -> dict[str, Any]:
        self.validate_size(size)
        num_files, file_size = self._SIZE_TO_PROJECT[size]
        files = generate_project_files(num_files, file_size, context.rng)
        prefix = f"projects/acmart-{size.value}"
        for name, data in files.items():
            context.storage.upload(context.input_bucket, f"{prefix}/{name}", data, content_type="text/x-tex")
        context.storage.create_bucket(context.output_bucket)
        return {
            "input_bucket": context.input_bucket,
            "prefix": prefix,
            "output_bucket": context.output_bucket,
            "output_key": f"archives/acmart-{size.value}.zip",
        }

    def run(self, event: Mapping[str, Any], context: BenchmarkContext) -> dict[str, Any]:
        bucket = str(event["input_bucket"])
        prefix = str(event["prefix"])
        keys = context.storage.list_objects(bucket, prefix)
        buffer = io.BytesIO()
        total_input = 0
        with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            for key in keys:
                data = context.storage.download(bucket, key)
                total_input += len(data)
                archive.writestr(key[len(prefix) + 1 :], data)
        payload = buffer.getvalue()
        context.storage.upload(
            str(event["output_bucket"]), str(event["output_key"]), payload, content_type="application/zip"
        )
        return {
            "output_bucket": event["output_bucket"],
            "output_key": event["output_key"],
            "files": len(keys),
            "input_bytes": total_input,
            "archive_bytes": len(payload),
            "compression_ratio": round(total_input / max(1, len(payload)), 3),
        }

    def profile(self, size: InputSize = InputSize.SMALL, language: Language = Language.PYTHON) -> WorkProfile:
        # Table 4: warm 470.5 ms, cold 607 ms, 1735 M instructions, 88.4%
        # CPU.  AWS reports a peak memory of 179 MB; GCP occasionally kills
        # the 256 MB configuration (Section 6.2 Q3), so min_memory_mb = 256
        # marks the boundary where failures start.
        num_files, file_size = self._SIZE_TO_PROJECT[size]
        input_bytes = num_files * file_size
        output_bytes = int(input_bytes * 0.4)
        return WorkProfile(
            warm_compute_s=0.4705 * size.scale,
            cold_init_s=0.136,
            instructions=1.735e9 * size.scale,
            cpu_utilization=0.884,
            peak_memory_mb=250.0,
            storage_read_bytes=input_bytes,
            storage_write_bytes=output_bytes,
            storage_read_requests=num_files + 1,
            storage_write_requests=1,
            output_bytes=512,
            code_package_mb=3.0,
            min_memory_mb=256,
        )
