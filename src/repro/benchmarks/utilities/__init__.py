"""Utility benchmarks: compression and data-vis."""

from .compression import CompressionBenchmark
from .data_vis import DataVisBenchmark

__all__ = ["CompressionBenchmark", "DataVisBenchmark"]
