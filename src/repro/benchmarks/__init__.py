"""The SeBS application suite (Table 3).

Six workload categories are represented, as in the paper:

* **Web applications** — ``dynamic-html`` (template rendering),
  ``uploader`` (fetch a file from a URL and upload it to cloud storage).
* **Multimedia** — ``thumbnailer`` (image resizing, Python and Node.js
  variants), ``video-processing`` (watermark + GIF conversion).
* **Utilities** — ``compression`` (zip a document project),
  ``data-vis`` (DNA sequence visualisation backend).
* **Inference** — ``image-recognition`` (ResNet-50 style image
  classification).
* **Scientific** — ``graph-bfs``, ``graph-pagerank``, ``graph-mst``
  (irregular graph computations).

Every benchmark is a real, executable Python kernel plus an input generator
(parameterised by size) and a calibrated :class:`~repro.benchmarks.base.WorkProfile`
that the cloud simulator uses to derive execution durations for arbitrary
memory configurations.
"""

from .base import (
    Benchmark,
    BenchmarkCategory,
    BenchmarkContext,
    BenchmarkResult,
    InputSize,
    WorkProfile,
)
from .registry import BenchmarkRegistry, default_registry, get_benchmark, list_benchmarks

__all__ = [
    "Benchmark",
    "BenchmarkCategory",
    "BenchmarkContext",
    "BenchmarkResult",
    "InputSize",
    "WorkProfile",
    "BenchmarkRegistry",
    "default_registry",
    "get_benchmark",
    "list_benchmarks",
]
