"""Exception hierarchy for the SeBS reproduction library.

Every error raised by the library derives from :class:`SeBSError`, so callers
can catch a single base class.  Sub-classes mirror the main subsystems: the
FaaS platform abstraction, the storage substrate, benchmark execution, and
experiment orchestration.
"""

from __future__ import annotations


class SeBSError(Exception):
    """Base class for all errors raised by the SeBS reproduction."""


class ConfigurationError(SeBSError):
    """An invalid or inconsistent configuration value was supplied."""


class PlatformError(SeBSError):
    """Base class for FaaS-platform related errors."""


class FunctionNotFoundError(PlatformError):
    """A function name was referenced before being created on the platform."""

    def __init__(self, name: str):
        super().__init__(f"function {name!r} does not exist on this platform")
        self.name = name


class FunctionAlreadyExistsError(PlatformError):
    """A function with the same name already exists on the platform."""

    def __init__(self, name: str):
        super().__init__(f"function {name!r} already exists on this platform")
        self.name = name


class DeploymentError(PlatformError):
    """A code package could not be deployed (e.g. exceeds size limits)."""


class InvocationError(PlatformError):
    """A function invocation failed on the provider side.

    The paper observes several classes of invocation failure: out-of-memory
    terminations (GCP at small memory sizes), service unavailability under
    concurrent bursts, and time-limit violations.  ``reason`` carries a short
    machine-readable tag (``"out-of-memory"``, ``"unavailable"``,
    ``"timeout"``).
    """

    def __init__(self, message: str, reason: str = "error"):
        super().__init__(message)
        self.reason = reason


class OutOfMemoryError(InvocationError):
    """Function exceeded the configured memory allocation."""

    def __init__(self, message: str):
        super().__init__(message, reason="out-of-memory")


class ServiceUnavailableError(InvocationError):
    """The platform could not serve the invocation (capacity/availability)."""

    def __init__(self, message: str):
        super().__init__(message, reason="unavailable")


class FunctionTimeoutError(InvocationError):
    """Function execution exceeded the platform time limit."""

    def __init__(self, message: str):
        super().__init__(message, reason="timeout")


class StorageError(SeBSError):
    """Base class for persistent/ephemeral storage errors."""


class BucketNotFoundError(StorageError):
    """A bucket was referenced before being created."""

    def __init__(self, bucket: str):
        super().__init__(f"bucket {bucket!r} does not exist")
        self.bucket = bucket


class ObjectNotFoundError(StorageError):
    """An object key does not exist in the referenced bucket."""

    def __init__(self, bucket: str, key: str):
        super().__init__(f"object {key!r} not found in bucket {bucket!r}")
        self.bucket = bucket
        self.key = key


class BenchmarkError(SeBSError):
    """Base class for benchmark definition and execution errors."""


class UnknownBenchmarkError(BenchmarkError):
    """The requested benchmark name is not registered."""

    def __init__(self, name: str, available: list[str] | None = None):
        message = f"unknown benchmark {name!r}"
        if available:
            message += f"; available: {', '.join(sorted(available))}"
        super().__init__(message)
        self.name = name


class InputGenerationError(BenchmarkError):
    """Benchmark input could not be generated for the requested size."""


class ExperimentError(SeBSError):
    """An experiment could not be executed or produced inconsistent results."""


class ShardReplayError(SeBSError):
    """A sharded replay failed after exhausting its supervision budget.

    Raised by :mod:`repro.parallel.supervisor` once a shard has burned
    through its retries (and, when enabled, its in-process quarantine
    replay).  Carries full shard provenance so callers can requeue, log, or
    resume precisely:

    * ``shard_index`` / ``functions`` — which shard died and whose traffic
      it carried;
    * ``attempts`` — how many times the supervisor tried it;
    * ``cause`` — the last underlying exception (also set as
      ``__cause__``), or ``None`` when the worker died silently
      (SIGKILL/OOM);
    * ``partial_outcomes`` — every *completed* shard outcome salvaged from
      the run, in shard order, so a caller with a checkpoint store loses no
      finished work.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_index: int,
        functions: tuple[str, ...] = (),
        attempts: int = 0,
        cause: BaseException | None = None,
        partial_outcomes: tuple = (),
    ):
        super().__init__(message)
        self.shard_index = shard_index
        self.functions = tuple(functions)
        self.attempts = attempts
        self.cause = cause
        self.partial_outcomes = tuple(partial_outcomes)


class CheckpointError(SeBSError):
    """A checkpoint store could not be used as configured.

    Raised for structural misuse — ``resume=True`` without a
    ``checkpoint_dir``, or a checkpoint directory that cannot be created.
    Corrupt or mismatched checkpoint *files* are never an error: they are
    ignored and the shard is simply replayed."""


class ModelFitError(SeBSError):
    """An analytical model could not be fitted to the measured data."""
