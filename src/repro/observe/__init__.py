"""Deterministic observability for the replay engines.

A pure-observer layer: typed lifecycle events (:mod:`.events`), windowed
simulated-time metrics with an exact sharded merge (:mod:`.timeseries`),
wire-format exporters (:mod:`.exporters`) and host-side replay profiling
(:mod:`.profile`).  Attaching any of it never draws from an RNG and never
reorders a scheduling decision, so an observed replay is bit-identical to
a detached one.
"""

from .events import (
    BreakerTransition,
    CompositeObserver,
    ContainerEvent,
    EventLog,
    FaultWindow,
    InvocationSpan,
    ReplayObserver,
    WorkflowStageSpan,
    invocation_span,
)
from .exporters import (
    chrome_trace,
    iter_spans,
    prometheus_snapshot,
    timeseries_csv,
    write_chrome_trace,
    write_event_jsonl,
    write_prometheus_snapshot,
    write_timeseries_csv,
)
from .profile import ProfileBuilder, ReplayProfile
from .timeseries import (
    DEFAULT_WINDOW_S,
    TimeSeriesBuilder,
    TimeSeriesSpec,
)

__all__ = [
    "BreakerTransition",
    "CompositeObserver",
    "ContainerEvent",
    "EventLog",
    "FaultWindow",
    "InvocationSpan",
    "ReplayObserver",
    "WorkflowStageSpan",
    "invocation_span",
    "chrome_trace",
    "iter_spans",
    "prometheus_snapshot",
    "timeseries_csv",
    "write_chrome_trace",
    "write_event_jsonl",
    "write_prometheus_snapshot",
    "write_timeseries_csv",
    "ProfileBuilder",
    "ReplayProfile",
    "DEFAULT_WINDOW_S",
    "TimeSeriesBuilder",
    "TimeSeriesSpec",
]
