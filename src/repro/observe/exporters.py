"""Exporters for the collected event stream and time series.

Four wire formats, all written atomically (:mod:`repro.utils.io`):

* **JSONL** — one ``event.to_dict()`` per line; the lossless archival form.
* **Chrome trace-event JSON** — a ``{"traceEvents": [...]}`` document that
  ``ui.perfetto.dev`` (or ``chrome://tracing``) loads directly.  Invocation
  spans become ``ph="X"`` complete events on one track per function
  (``pid=1``); workflow stages land on one track per *execution*
  (``pid=2``), so the parent→child causality of a workflow reads as a
  single lane.  Container, breaker and fault events become instant events.
* **Prometheus text** — an end-of-run counter snapshot in the exposition
  format, for scraping replay farms.
* **CSV** — the windowed time series, one row per (function, window).

Timestamps are simulated seconds; Chrome wants microseconds, so spans are
scaled by 1e6.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..utils.io import atomic_write_text
from .events import InvocationSpan, WorkflowStageSpan
from .timeseries import TimeSeriesBuilder

_US = 1_000_000.0


def _prepare(path: str | Path) -> Path:
    """Resolve ``path`` and create its parent directory if missing."""
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    return resolved


def write_event_jsonl(events: Sequence, path: str | Path) -> None:
    """One event dict per line, in collection order."""
    lines = [json.dumps(event.to_dict()) for event in events]
    atomic_write_text(_prepare(path), "\n".join(lines) + ("\n" if lines else ""))


def chrome_trace(events: Sequence) -> dict:
    """Build the Chrome trace-event document from a collected event stream."""
    trace_events: list[dict] = []
    function_tids: dict[str, int] = {}

    def tid_for(function: str) -> int:
        tid = function_tids.get(function)
        if tid is None:
            tid = len(function_tids) + 1
            function_tids[function] = tid
        return tid

    def span_event(span: InvocationSpan, pid: int, tid: int, name: str) -> dict:
        return {
            "name": name,
            "cat": span.outcome,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": span.submitted_at * _US,
            "dur": max(0.0, span.finished_at - span.submitted_at) * _US,
            "args": {
                "request_index": span.request_index,
                "outcome": span.outcome,
                "start_type": span.start_type,
                "container_id": span.container_id,
                "queue_wait_s": span.queue_wait_s,
                "cold_init_s": span.cold_init_s,
                "compute_s": span.compute_s,
                "network_s": span.network_s,
                "attempts": span.attempts,
            },
        }

    for event in events:
        if isinstance(event, InvocationSpan):
            trace_events.append(span_event(event, 1, tid_for(event.function), event.function))
        elif isinstance(event, WorkflowStageSpan):
            entry = span_event(event.span, 2, event.execution_index + 1, event.stage)
            entry["args"]["workflow"] = event.workflow
            entry["args"]["execution_index"] = event.execution_index
            entry["args"]["map_index"] = event.map_index
            trace_events.append(entry)
        else:
            document = event.to_dict()
            at = document.get("at", document.get("start_s", 0.0))
            trace_events.append(
                {
                    "name": f"{document['type']}:{document.get('kind', document.get('new_state', ''))}",
                    "cat": document["type"],
                    "ph": "i",
                    "s": "g",
                    "pid": 1,
                    "tid": tid_for(document.get("function", "")),
                    "ts": at * _US,
                    "args": document,
                }
            )
    # Name the per-function tracks (metadata events).
    for function, tid in sorted(function_tids.items(), key=lambda item: item[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": function or "platform"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence, path: str | Path) -> None:
    atomic_write_text(_prepare(path), json.dumps(chrome_trace(events)) + "\n")


#: (metric suffix, result attribute, help text) for the Prometheus snapshot.
_PROM_METRICS = (
    ("invocations_total", "invocations", "terminal invocation records"),
    ("executions_total", "executions", "workflow executions"),
    ("executed_total", "executed_count", "requests that reached a sandbox"),
    ("failures_total", "failure_count", "executed-but-failed requests"),
    ("throttled_total", "throttled_count", "throttle rejections"),
    ("dropped_total", "dropped_count", "admission-queue drops"),
    ("faulted_total", "faulted_count", "fault-window failures"),
    ("short_circuited_total", "short_circuited_count", "breaker short-circuits"),
    ("cold_starts_total", "cold_start_count", "cold-started invocations"),
    ("retries_total", "retry_count", "client retry attempts"),
    ("hedges_total", "hedge_count", "hedged requests"),
    ("cost_usd_total", "total_cost_usd", "accumulated billing"),
    ("peak_in_flight", "peak_in_flight", "peak concurrent executions"),
    ("simulated_span_seconds", "simulated_span_s", "simulated trace span"),
    ("wall_clock_seconds", "wall_clock_s", "host wall clock of the replay"),
    ("throughput_per_second", "throughput_per_s", "records per host second"),
)


def prometheus_snapshot(result, labels: dict | None = None, prefix: str = "repro_replay") -> str:
    """End-of-run counters of a replay result in Prometheus text format.

    ``result`` is duck-typed (:class:`~repro.workload.engine.WorkloadResult`
    or :class:`~repro.workflows.engine.WorkflowReplayResult`); attributes a
    result type does not have are skipped.
    """
    label_str = ""
    if labels:
        body = ",".join(f'{name}="{value}"' for name, value in sorted(labels.items()))
        label_str = "{" + body + "}"
    lines: list[str] = []
    for suffix, attribute, help_text in _PROM_METRICS:
        value = getattr(result, attribute, None)
        if value is None:
            continue
        kind = "gauge" if not suffix.endswith("_total") else "counter"
        lines.append(f"# HELP {prefix}_{suffix} {help_text}")
        lines.append(f"# TYPE {prefix}_{suffix} {kind}")
        lines.append(f"{prefix}_{suffix}{label_str} {float(value):g}")
    return "\n".join(lines) + "\n"


def write_prometheus_snapshot(result, path: str | Path, labels: dict | None = None) -> None:
    atomic_write_text(_prepare(path), prometheus_snapshot(result, labels=labels))


def timeseries_csv(builder: TimeSeriesBuilder) -> str:
    """The windowed series as CSV (header always present, rows may be empty)."""
    percentile_columns = [f"p{which:g}_client_s" for which in builder.spec.percentiles]
    # Column order mirrors TimeSeriesBuilder.rows().
    from .timeseries import _FunctionSeries

    columns = [
        "function",
        "window",
        "start_s",
        *_FunctionSeries.COUNTER_NAMES,
        "goodput_per_s",
        "in_flight",
        "warm_pool",
        *percentile_columns,
    ]
    lines = [",".join(columns)]
    for row in builder.rows():
        rendered = []
        for column in columns:
            value = row[column]
            if value is None:
                rendered.append("")
            elif isinstance(value, float):
                rendered.append(repr(value))
            else:
                rendered.append(str(value))
        lines.append(",".join(rendered))
    return "\n".join(lines) + "\n"


def write_timeseries_csv(builder: TimeSeriesBuilder, path: str | Path) -> None:
    atomic_write_text(_prepare(path), timeseries_csv(builder))


def iter_spans(events: Iterable) -> Iterable[InvocationSpan]:
    """All invocation spans in an event stream (workflow stages unwrapped)."""
    for event in events:
        if isinstance(event, InvocationSpan):
            yield event
        elif isinstance(event, WorkflowStageSpan):
            yield event.span
