"""Host-side wall-clock profiling of the replay machinery itself.

Pure host instrumentation: :class:`ProfileBuilder` brackets the phases of
a replay (``plan`` / ``shards`` / ``merge`` / ``stats`` for the sharded
path, ``replay`` / ``stats`` for the serial one) with
``time.perf_counter()`` and lands a :class:`ReplayProfile` on
``result.profile``.  Nothing here touches simulated time or any RNG —
profiling an identical replay twice yields identical *simulation* output
and merely different host timings, so the profile (like ``supervision``)
is excluded from the byte-compared ``to_dict()`` payloads.

When the sharded replay ran supervised, the supervision summary is folded
into the profile (``profile.supervision``) so one document answers both
"where did the wall clock go" and "what did recovery cost".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class ReplayProfile:
    """Wall-clock decomposition of one replay, in phase order."""

    #: phase name -> accumulated host seconds, in first-entry order.
    phases: dict[str, float] = field(default_factory=dict)
    #: Total host seconds from builder construction to :meth:`ProfileBuilder.build`.
    wall_clock_s: float = 0.0
    #: ``SupervisionReport.to_dict()`` when the replay ran supervised.
    supervision: dict | None = None

    @property
    def accounted_s(self) -> float:
        """Sum of the phase timings (the rest is untracked overhead)."""
        return sum(self.phases.values())

    def to_dict(self) -> dict:
        document: dict = {
            "wall_clock_s": self.wall_clock_s,
            "accounted_s": self.accounted_s,
            "phases": dict(self.phases),
        }
        if self.supervision is not None:
            document["supervision"] = self.supervision
        return document

    def rows(self) -> list[dict]:
        """One row per phase for the CLI table renderer."""
        total = self.wall_clock_s or 1.0
        return [
            {
                "phase": name,
                "seconds": f"{seconds:.4f}",
                "share": f"{100.0 * seconds / total:.1f}%",
            }
            for name, seconds in self.phases.items()
        ]


class ProfileBuilder:
    """Accumulates phase timings; reentrant per phase name."""

    def __init__(self) -> None:
        self._phases: dict[str, float] = {}
        self._started = time.perf_counter()

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    def build(self, supervision: dict | None = None) -> ReplayProfile:
        return ReplayProfile(
            phases=dict(self._phases),
            wall_clock_s=time.perf_counter() - self._started,
            supervision=supervision,
        )
