"""Typed lifecycle events and the pure-observer protocol of the replay.

The engines expose a single optional hook object — a
:class:`ReplayObserver` — that is notified *after* every simulation
decision has been taken: a completed invocation (with its queue-wait /
cold-init / compute / network segments), a sandbox created or evicted, a
circuit-breaker state transition, a scheduled fault window, a workflow
stage completion with its parent execution.  The contract that makes this
layer safe to thread through a bit-reproducible simulator:

* **Zero cost when detached.**  Every hook site is guarded by
  ``if observer is not None`` — a detached replay executes exactly the
  instruction stream it executed before this layer existed.
* **No RNG draws, no ordering changes.**  Observers receive values the
  engine already computed; they never touch a random stream, never mutate
  platform state, and are invoked outside every scheduling decision.  A
  replay with observers attached is therefore bit-identical to a detached
  one — :mod:`tests.test_observe` proves it byte-for-byte.

Events are plain slotted dataclasses with ``to_dict()``; the exporters in
:mod:`repro.observe.exporters` turn a collected stream into JSONL, Chrome
trace-event JSON (Perfetto), Prometheus text, or CSV.  The rare event
types are frozen; :class:`InvocationSpan` is created once per invocation
on 100k+ traces and stays unfrozen — frozen-dataclass construction goes
through ``object.__setattr__`` per field, which alone would eat most of
the attached-observer overhead budget.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..faas.invocation import InvocationRecord

#: Event-type tags used by ``to_dict()`` / the JSONL exporter.
INVOCATION = "invocation"
CONTAINER = "container"
BREAKER = "breaker"
FAULT_WINDOW = "fault-window"
WORKFLOW_STAGE = "workflow-stage"


@dataclass(slots=True)
class InvocationSpan:
    """One invocation as a span over simulated time, with its segments.

    Derived entirely from the :class:`~repro.faas.invocation.InvocationRecord`
    the engine already produced; ``queue_wait_s`` is admission delay,
    ``network_s`` is the client-observed remainder once compute, cold init
    and queueing are accounted for (gateway + payload + response transfer).
    Non-executed requests (throttled / dropped / short-circuited) become
    zero-length spans at their submission instant, keeping the throttle and
    drop decisions visible in the event stream.  Unfrozen purely for
    construction speed (see the module docstring); treat instances as
    immutable telemetry.
    """

    function: str
    request_index: int
    outcome: str
    success: bool
    start_type: str
    container_id: str
    submitted_at: float
    started_at: float
    finished_at: float
    queue_wait_s: float
    cold_init_s: float
    compute_s: float
    network_s: float
    attempts: int

    def to_dict(self) -> dict:
        return {"type": INVOCATION, **asdict(self)}


@dataclass(frozen=True, slots=True)
class ContainerEvent:
    """A sandbox created (``kind="create"``) or evicted (``kind="evict"``).

    Creations are per-sandbox; evictions may be batched (``count`` > 1)
    when a policy sweep or an injected crash evicts a population at one
    simulated instant.
    """

    kind: str
    function: str
    at: float
    count: int = 1
    container_id: str = ""
    reason: str = ""

    def to_dict(self) -> dict:
        return {"type": CONTAINER, **asdict(self)}


@dataclass(frozen=True, slots=True)
class BreakerTransition:
    """One circuit-breaker state change, observed post-decision."""

    function: str
    at: float
    old_state: str
    new_state: str

    def to_dict(self) -> dict:
        return {"type": BREAKER, **asdict(self)}


@dataclass(frozen=True, slots=True)
class FaultWindow:
    """A scheduled fault window (outage or latency storm), trace-relative.

    Emitted once per function at replay start from the already-materialized
    fault schedule — reading the schedule draws nothing.
    """

    function: str
    kind: str
    start_s: float
    end_s: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {"type": FAULT_WINDOW, **asdict(self)}


@dataclass(frozen=True, slots=True)
class WorkflowStageSpan:
    """One workflow stage invocation, tied to its parent execution.

    ``execution_index`` is the causal parent: every stage span of one
    workflow execution shares it, so exporters can lay the parent→child
    chain out as one lane (the Chrome exporter uses it as the thread id).
    """

    workflow: str
    execution_index: int
    stage: str
    map_index: int
    span: InvocationSpan

    def to_dict(self) -> dict:
        return {
            "type": WORKFLOW_STAGE,
            "workflow": self.workflow,
            "execution_index": self.execution_index,
            "stage": self.stage,
            "map_index": self.map_index,
            "span": asdict(self.span),
        }


def invocation_span(record: InvocationRecord) -> InvocationSpan:
    """Derive the typed span (with segments) from a finished record."""
    cold_init_s = record.cold_init_s
    queue_wait_s = record.admission_delay_s
    compute_s = record.provider_time_s
    if record.executed:
        network_s = record.client_time_s - compute_s - cold_init_s - queue_wait_s
        if network_s < 0.0:
            network_s = 0.0
    else:
        network_s = 0.0
    return InvocationSpan(
        record.function_name,
        record.request_index,
        record.outcome.value,
        record.success,
        record.start_type.value,
        record.container_id,
        record.submitted_at,
        record.started_at,
        record.finished_at,
        queue_wait_s,
        cold_init_s,
        compute_s,
        network_s,
        record.attempts,
    )


class ReplayObserver:
    """No-op base observer: subclass and override what you care about.

    Every method is called *after* the corresponding decision with values
    the engine already holds; implementations must not mutate their
    arguments or any platform state (the bit-identity contract).  The
    default implementations do nothing, so a subclass only pays for the
    hooks it overrides.
    """

    def on_invocation(self, record: InvocationRecord) -> None:
        """A request reached its terminal record (any outcome)."""

    def on_container_create(self, function: str, container_id: str, at: float) -> None:
        """A sandbox was created (cold start) at simulated time ``at``."""

    def on_container_evict(self, function: str, count: int, at: float, reason: str) -> None:
        """``count`` sandboxes of ``function`` were evicted at ``at``."""

    def on_breaker_transition(
        self, function: str, at: float, old_state: str, new_state: str
    ) -> None:
        """The function's circuit breaker changed state at ``at``."""

    def on_fault_window(
        self, function: str, kind: str, start_s: float, end_s: float, detail: str
    ) -> None:
        """A scheduled fault window applies to ``function`` (emitted at start)."""

    def on_workflow_stage(
        self, workflow: str, execution_index: int, stage: str, map_index: int, record: InvocationRecord
    ) -> None:
        """A workflow stage invocation completed within ``execution_index``."""


class CompositeObserver(ReplayObserver):
    """Fan one hook stream out to several observers, in order."""

    def __init__(self, observers: list[ReplayObserver]):
        self._observers = list(observers)
        # Per-invocation dispatch is the only per-record hook, so it is an
        # instance attribute (shadowing the class method): a lone observer's
        # bound hook is forwarded directly, several share one closure —
        # either way the composite adds no method frame of its own.
        hooks = tuple(observer.on_invocation for observer in self._observers)
        if len(hooks) == 1:
            self.on_invocation = hooks[0]
        elif hooks:

            def _fan_out(record, _hooks=hooks):
                for hook in _hooks:
                    hook(record)

            self.on_invocation = _fan_out

    def on_invocation(self, record):
        for observer in self._observers:
            observer.on_invocation(record)

    def on_container_create(self, function, container_id, at):
        for observer in self._observers:
            observer.on_container_create(function, container_id, at)

    def on_container_evict(self, function, count, at, reason):
        for observer in self._observers:
            observer.on_container_evict(function, count, at, reason)

    def on_breaker_transition(self, function, at, old_state, new_state):
        for observer in self._observers:
            observer.on_breaker_transition(function, at, old_state, new_state)

    def on_fault_window(self, function, kind, start_s, end_s, detail):
        for observer in self._observers:
            observer.on_fault_window(function, kind, start_s, end_s, detail)

    def on_workflow_stage(self, workflow, execution_index, stage, map_index, record):
        for observer in self._observers:
            observer.on_workflow_stage(workflow, execution_index, stage, map_index, record)


class EventLog(ReplayObserver):
    """Observer that materializes the typed event stream in arrival order.

    Memory is O(events); very large replays that only need windowed series
    should attach a :class:`~repro.observe.timeseries.TimeSeriesBuilder`
    instead (O(active windows) memory).

    The per-invocation hooks only *append* during the replay (the record
    the engine already built, or a small tuple for workflow stages);
    deriving the typed spans is deferred to the first :attr:`events`
    access.  Same event stream, but the replay's hot loop pays one list
    append instead of a 14-field span construction — the difference
    between blowing and meeting the attached-overhead budget of
    ``benchmarks/bench_observability.py``.  Derivation is pure, so
    laziness cannot affect replay output.
    """

    def __init__(self) -> None:
        #: Raw entries in arrival order: an InvocationRecord, a
        #: ``(workflow, execution_index, stage, map_index, record)`` tuple,
        #: or an already-typed rare event.
        self._raw: list = []
        self._typed: list | None = None
        # The per-invocation hook IS the list append (instance attribute
        # shadows the class method) — the cheapest possible hot path.
        self.on_invocation = self._raw.append

    def __len__(self) -> int:
        return len(self._raw)

    @property
    def events(self) -> list:
        """The typed event stream, derived (and cached) on first access."""
        if self._typed is None or len(self._typed) != len(self._raw):
            self._typed = [
                entry
                if entry.__class__ not in (InvocationRecord, tuple)
                else invocation_span(entry)
                if entry.__class__ is InvocationRecord
                else WorkflowStageSpan(
                    workflow=entry[0],
                    execution_index=entry[1],
                    stage=entry[2],
                    map_index=entry[3],
                    span=invocation_span(entry[4]),
                )
                for entry in self._raw
            ]
        return self._typed

    def on_container_create(self, function, container_id, at):
        self._raw.append(
            ContainerEvent(kind="create", function=function, at=at, container_id=container_id)
        )

    def on_container_evict(self, function, count, at, reason):
        self._raw.append(
            ContainerEvent(kind="evict", function=function, at=at, count=count, reason=reason)
        )

    def on_breaker_transition(self, function, at, old_state, new_state):
        self._raw.append(
            BreakerTransition(function=function, at=at, old_state=old_state, new_state=new_state)
        )

    def on_fault_window(self, function, kind, start_s, end_s, detail):
        self._raw.append(
            FaultWindow(function=function, kind=kind, start_s=start_s, end_s=end_s, detail=detail)
        )

    def on_workflow_stage(self, workflow, execution_index, stage, map_index, record):
        self._raw.append((workflow, execution_index, stage, map_index, record))
