"""Windowed metrics over *simulated* time, with an exact sharded merge.

:class:`TimeSeriesBuilder` is a :class:`~repro.observe.events.ReplayObserver`
that folds the event stream into per-function, per-window counters:

* arrivals (by submission window) and completions / goodput (by finish
  window), plus throttle / drop / fault / short-circuit / failure and
  cold-start counts;
* in-flight concurrency and warm-pool occupancy as *delta* series (+1 on
  start / create, −1 on finish / evict) that are prefix-summed only at
  export, so building stays O(1) per event;
* per-window client-latency percentiles via the exact mergeable bottom-k
  reservoirs of :mod:`repro.stats.streaming`, keyed by
  ``"<function>/w<window>"`` — the reservoir's priority tags are a pure
  function of (seed, key, value, insertion index within the window's
  per-function substream), so the union of shard-local reservoirs equals
  the serial reservoir element-for-element.

Memory is O(active windows x functions + reservoir capacity): windows are
sparse dicts, untouched buckets cost nothing.  :meth:`TimeSeriesBuilder.merge`
combines shard-local builders with integer sums and reservoir unions —
commutative and exact — so a sharded replay produces the *identical*
series as a serial one (proved in :mod:`tests.test_observe`).

:class:`TimeSeriesSpec` is the picklable recipe shipped to shard workers;
each worker builds its own :class:`TimeSeriesBuilder` from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import InvocationOutcome, StartType
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRecord
from ..stats.streaming import MergeableReservoir
from .events import ReplayObserver

#: Enum singletons hoisted for identity checks on the per-record hot path
#: (the ``executed``/``is_cold`` record properties cost a call each).
_COMPLETED = InvocationOutcome.COMPLETED
_FAILED = InvocationOutcome.FAILED
_COLD = StartType.COLD

#: Default simulated-time bucket width (seconds).
DEFAULT_WINDOW_S = 5.0

#: Default per-window latency percentiles.
DEFAULT_WINDOW_PERCENTILES = (50.0, 95.0, 99.0)

#: Default per-window reservoir capacity.  Deliberately smaller than the
#: end-of-run reservoirs: there is one reservoir per active window.
DEFAULT_WINDOW_RESERVOIR = 128


@dataclass(frozen=True)
class TimeSeriesSpec:
    """Picklable recipe for building identical builders on every shard."""

    window_s: float = DEFAULT_WINDOW_S
    percentiles: tuple[float, ...] = DEFAULT_WINDOW_PERCENTILES
    reservoir_capacity: int = DEFAULT_WINDOW_RESERVOIR
    seed: int = 0

    def __post_init__(self):
        if self.window_s <= 0:
            raise ConfigurationError("time-series window_s must be positive")
        if self.reservoir_capacity < 1:
            raise ConfigurationError("time-series reservoir_capacity must be at least 1")

    def build(self) -> "TimeSeriesBuilder":
        return TimeSeriesBuilder(self)


class _FunctionSeries:
    """All windowed state of one function (sparse over window indices)."""

    __slots__ = ("counters", "inflight_delta", "warm_delta", "latency")

    #: Integer counter names, in the column order of the exported rows.
    COUNTER_NAMES = (
        "arrivals",
        "completions",
        "successes",
        "failures",
        "throttled",
        "dropped",
        "faulted",
        "short_circuited",
        "cold_starts",
    )

    def __init__(self) -> None:
        #: window index -> [one int per COUNTER_NAMES entry]
        self.counters: dict[int, list[int]] = {}
        self.inflight_delta: dict[int, int] = {}
        self.warm_delta: dict[int, int] = {}
        #: window index -> reservoir of successful-completion client times
        self.latency: dict[int, MergeableReservoir] = {}

    def bump(self, window: int, name: str, by: int = 1) -> None:
        row = self.counters.get(window)
        if row is None:
            row = [0] * len(self.COUNTER_NAMES)
            self.counters[window] = row
        row[_COUNTER_INDEX[name]] += by

    def merge(self, other: "_FunctionSeries") -> None:
        for window, row in other.counters.items():
            mine = self.counters.get(window)
            if mine is None:
                self.counters[window] = list(row)
            else:
                for i, value in enumerate(row):
                    mine[i] += value
        for window, delta in other.inflight_delta.items():
            self.inflight_delta[window] = self.inflight_delta.get(window, 0) + delta
        for window, delta in other.warm_delta.items():
            self.warm_delta[window] = self.warm_delta.get(window, 0) + delta
        for window, reservoir in other.latency.items():
            mine = self.latency.get(window)
            if mine is None:
                self.latency[window] = reservoir
            else:
                mine.merge(reservoir)


#: Column index per counter name — the fold below runs once per invocation
#: on 100k+ traces, so it indexes rows by integer instead of name lookups.
_COUNTER_INDEX = {name: i for i, name in enumerate(_FunctionSeries.COUNTER_NAMES)}
_NCOUNTERS = len(_FunctionSeries.COUNTER_NAMES)
_ARRIVALS = _COUNTER_INDEX["arrivals"]
_COMPLETIONS = _COUNTER_INDEX["completions"]
_SUCCESSES = _COUNTER_INDEX["successes"]
_FAILURES = _COUNTER_INDEX["failures"]
_COLD_STARTS = _COUNTER_INDEX["cold_starts"]
#: Terminal-outcome value -> failure-class column (anything else counts as
#: a plain execution failure).
_OUTCOME_INDEX = {
    "throttled": _COUNTER_INDEX["throttled"],
    "dropped": _COUNTER_INDEX["dropped"],
    "faulted": _COUNTER_INDEX["faulted"],
    "short-circuited": _COUNTER_INDEX["short_circuited"],
}


class TimeSeriesBuilder(ReplayObserver):
    """Fold the replay's event stream into windowed, mergeable series."""

    def __init__(self, spec: TimeSeriesSpec | None = None):
        self.spec = spec if spec is not None else TimeSeriesSpec()
        self._window_s = self.spec.window_s
        self._functions: dict[str, _FunctionSeries] = {}

    # -------------------------------------------------------------- building
    def _window(self, at: float) -> int:
        return int(at // self.spec.window_s)

    def _series(self, function: str) -> _FunctionSeries:
        series = self._functions.get(function)
        if series is None:
            series = _FunctionSeries()
            self._functions[function] = series
        return series

    def observe_record(self, record: InvocationRecord) -> None:
        """Fold one terminal invocation record into the series.

        This is the per-invocation hot path of an attached replay (the
        ≤10% overhead budget of ``benchmarks/bench_observability.py``), so
        it indexes counter rows directly instead of going through
        :meth:`_FunctionSeries.bump`.
        """
        width = self._window_s
        name = record.function_name
        series = self._functions.get(name)
        if series is None:
            series = _FunctionSeries()
            self._functions[name] = series
        counters = series.counters
        arrive = int(record.submitted_at // width)
        finish = int(record.finished_at // width)
        arrive_row = counters.get(arrive)
        if arrive_row is None:
            arrive_row = [0] * _NCOUNTERS
            counters[arrive] = arrive_row
        arrive_row[_ARRIVALS] += 1
        if finish == arrive:
            finish_row = arrive_row
        else:
            finish_row = counters.get(finish)
            if finish_row is None:
                finish_row = [0] * _NCOUNTERS
                counters[finish] = finish_row
        finish_row[_COMPLETIONS] += 1
        outcome = record.outcome
        if record.success:
            finish_row[_SUCCESSES] += 1
            reservoir = series.latency.get(finish)
            if reservoir is None:
                reservoir = MergeableReservoir(
                    capacity=self.spec.reservoir_capacity,
                    key=f"{name}/w{finish}",
                    seed=self.spec.seed,
                )
                series.latency[finish] = reservoir
            reservoir.add(record.client_time_s)
        else:
            finish_row[_OUTCOME_INDEX.get(outcome.value, _FAILURES)] += 1
        if outcome is _COMPLETED or outcome is _FAILED:
            start = int(record.started_at // width)
            if record.start_type is _COLD:
                if start == finish:
                    finish_row[_COLD_STARTS] += 1
                elif start == arrive:
                    arrive_row[_COLD_STARTS] += 1
                else:
                    row = counters.get(start)
                    if row is None:
                        row = [0] * _NCOUNTERS
                        counters[start] = row
                    row[_COLD_STARTS] += 1
            inflight = series.inflight_delta
            inflight[start] = inflight.get(start, 0) + 1
            inflight[finish] = inflight.get(finish, 0) - 1

    # Observer protocol: records, container churn and workflow stages feed
    # the series; breaker transitions and fault windows are event-stream
    # concerns with no windowed aggregate here.  on_invocation aliases
    # observe_record directly — one call frame less per invocation.
    on_invocation = observe_record

    def on_workflow_stage(self, workflow, execution_index, stage, map_index, record):
        self.observe_record(record)

    def on_container_create(self, function, container_id, at):
        series = self._series(function)
        window = self._window(at)
        series.warm_delta[window] = series.warm_delta.get(window, 0) + 1

    def on_container_evict(self, function, count, at, reason):
        series = self._series(function)
        window = self._window(at)
        series.warm_delta[window] = series.warm_delta.get(window, 0) - count

    # --------------------------------------------------------------- merging
    def merge(self, other: "TimeSeriesBuilder") -> None:
        """Fold a shard-local builder in (exact: sums and reservoir unions)."""
        if other.spec != self.spec:
            raise ConfigurationError(
                "cannot merge time-series built from different specs: "
                f"{other.spec} != {self.spec}"
            )
        for function, series in other._functions.items():
            mine = self._functions.get(function)
            if mine is None:
                self._functions[function] = series
            else:
                mine.merge(series)

    # --------------------------------------------------------------- exports
    def functions(self) -> list[str]:
        return sorted(self._functions)

    def rows(self) -> list[dict]:
        """Flat per-(function, window) rows, windows dense per function.

        In-flight and warm-pool deltas are prefix-summed into levels
        sampled at each window's start boundary; every value is an exact
        integer or a reservoir percentile, so serial and merged builders
        export byte-identical rows.
        """
        out: list[dict] = []
        width = self.spec.window_s
        for function in self.functions():
            series = self._functions[function]
            windows = set(series.counters) | set(series.inflight_delta) | set(series.warm_delta)
            if not windows:
                continue
            first, last = min(windows), max(windows)
            inflight = 0
            warm = 0
            for window in range(first, last + 1):
                counters = series.counters.get(window)
                row: dict = {
                    "function": function,
                    "window": window,
                    "start_s": window * width,
                }
                for i, name in enumerate(_FunctionSeries.COUNTER_NAMES):
                    row[name] = counters[i] if counters is not None else 0
                row["goodput_per_s"] = row["successes"] / width
                row["in_flight"] = inflight
                row["warm_pool"] = warm
                inflight += series.inflight_delta.get(window, 0)
                warm += series.warm_delta.get(window, 0)
                reservoir = series.latency.get(window)
                for which in self.spec.percentiles:
                    label = f"p{which:g}_client_s"
                    row[label] = reservoir.percentile(which) if reservoir is not None else None
                out.append(row)
        return out

    def to_dict(self) -> dict:
        """Exact document form (golden fixtures, ``--output`` payloads)."""
        return {
            "window_s": self.spec.window_s,
            "percentiles": list(self.spec.percentiles),
            "rows": self.rows(),
        }
