"""The Workload-Replay experiment: realistic traffic against each provider.

The paper's experiments probe providers with controlled batches; this
experiment instead replays a *trace* — mixed, timestamped traffic over
several deployed functions — through the event-queue engine
(:mod:`repro.workload.engine`) and compares how the providers fare under
identical load: cold-start rates, tail latency, failures and cost all
diverge once arrivals overlap, because each provider's eviction policy and
sandbox-sharing rules react differently to the same arrival structure.

The same synthesized trace (one seed, one scenario) is replayed against
every provider, so differences between rows are attributable to the
platform, not the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Provider
from ..exceptions import ConfigurationError
from ..workload.engine import WorkloadResult
from ..workload.scenario import Scenario, standard_scenario
from ..workload.trace import MergedWorkloadTrace, WorkloadTrace
from .base import ExperimentRunner, deploy_benchmark

@dataclass(frozen=True)
class WorkloadDeployment:
    """One function to deploy before the trace is replayed."""

    function_name: str
    benchmark: str
    memory_mb: int = 256


#: Default multi-tenant deployment: a cheap web endpoint, a multimedia
#: function and a batch-style utility, covering the suite's main classes.
DEFAULT_DEPLOYMENTS: tuple[WorkloadDeployment, ...] = (
    WorkloadDeployment("web-api", "dynamic-html", 256),
    WorkloadDeployment("thumbnails", "thumbnailer", 1024),
    WorkloadDeployment("archiver", "compression", 1024),
)


@dataclass
class WorkloadReplayResult:
    """Per-provider outcomes of replaying one trace."""

    scenario_name: str
    trace: WorkloadTrace | MergedWorkloadTrace
    per_provider: dict[Provider, WorkloadResult] = field(default_factory=dict)

    @property
    def trace_invocations(self) -> int:
        return len(self.trace)

    @property
    def trace_duration_s(self) -> float:
        return self.trace.duration_s

    def to_rows(self) -> list[dict]:
        """Per-provider, per-function rows for the reporting tables."""
        rows = []
        for provider in sorted(self.per_provider, key=lambda p: p.value):
            for row in self.per_provider[provider].to_rows():
                rows.append({"provider": provider.value, **row})
        return rows

    def summary_rows(self) -> list[dict]:
        """One aggregate row per provider."""
        return [
            self.per_provider[provider].summary_row()
            for provider in sorted(self.per_provider, key=lambda p: p.value)
        ]


class WorkloadReplayExperiment(ExperimentRunner):
    """Replays a synthesized (or supplied) trace on each simulated provider."""

    def run(
        self,
        providers: tuple[Provider, ...] = (Provider.AWS, Provider.GCP, Provider.AZURE),
        deployments: tuple[WorkloadDeployment, ...] = DEFAULT_DEPLOYMENTS,
        pattern: str = "mixed",
        duration_s: float = 600.0,
        rate_per_s: float = 2.0,
        scenario: Scenario | None = None,
        trace: WorkloadTrace | MergedWorkloadTrace | None = None,
        keep_records: bool = True,
        workers: int | None = None,
        supervision=None,
        checkpoint_dir=None,
        resume: bool = False,
        observer_factory=None,
        timeseries=None,
        profile: bool = False,
    ) -> WorkloadReplayResult:
        """Deploy the functions, build the trace once, replay it everywhere.

        ``scenario`` overrides the canned ``pattern``; ``trace`` (e.g. one
        loaded from JSON) overrides both, in which case every function named
        by the trace must appear in ``deployments``.  ``keep_records=False``
        replays in streaming-aggregation mode (O(functions) memory,
        reservoir-sampled latency percentiles instead of exact ones).

        ``workers`` replays each provider's workload through the sharded
        parallel path (:mod:`repro.parallel`) — identical results, spread
        over that many processes.  In streaming mode the scenario recipe
        itself is sharded, so workers synthesize their own arrivals and no
        requests are pickled between processes.  (The experiment still
        builds the trace once in the parent for its report —
        ``trace_invocations``/``save-trace``; callers who need a truly
        O(functions)-memory parent should call
        ``platform.run_workload(scenario, keep_records=False, workers=N)``
        directly.)

        ``supervision`` (a :class:`~repro.parallel.SupervisorConfig`) and
        ``checkpoint_dir``/``resume`` pass through to the sharded replay:
        shard timeouts/retries/quarantine and atomic per-shard
        checkpointing with byte-identical crash resume.  The checkpoint
        fingerprint covers the provider, so one directory serves all of
        them.

        ``observer_factory`` is called once per provider (with the
        :class:`~repro.config.Provider`) and must return a
        :class:`~repro.observe.events.ReplayObserver` (or ``None``) for
        that provider's replay — one event log per provider, no mingling.
        ``timeseries`` (a spec or window width) and ``profile`` pass
        straight through to each provider's replay, landing on
        ``result.per_provider[p].timeseries`` / ``.profile``.
        """
        if trace is None:
            if scenario is None:
                scenario = standard_scenario(
                    pattern,
                    [deployment.function_name for deployment in deployments],
                    duration_s=duration_s,
                    rate_per_s=rate_per_s,
                )
            if scenario.workflow_traffic:
                raise ConfigurationError(
                    f"scenario {scenario.name!r} carries workflow traffic, which this "
                    "experiment would silently drop; replay it with "
                    "WorkflowReplayExperiment / SimulatedPlatform.run_workflows"
                )
            trace = scenario.build_trace(seed=self.config.seed)
            # Streaming sharded replays ship the scenario recipe instead of
            # the materialised trace: each worker synthesizes its own shard
            # (the trace above is only retained for reporting); trace_seed
            # makes the workers derive the same arrival streams as the
            # trace built above.
            if workers is not None and not keep_records:
                workload: Scenario | WorkloadTrace | MergedWorkloadTrace = scenario
            else:
                workload = trace
        else:
            workload = trace
        result = WorkloadReplayResult(
            scenario_name=scenario.name if scenario is not None else "trace",
            trace=trace,
        )
        for provider in providers:
            platform = self.make_platform(provider)
            for deployment in deployments:
                deploy_benchmark(
                    platform,
                    deployment.benchmark,
                    memory_mb=deployment.memory_mb if platform.limits.memory_static else 0,
                    language=self.language,
                    input_size=self.input_size,
                    function_name=deployment.function_name,
                )
            result.per_provider[provider] = platform.run_workload(
                workload,
                keep_records=keep_records,
                workers=workers,
                trace_seed=self.config.seed,
                supervision=supervision,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                observer=observer_factory(provider) if observer_factory is not None else None,
                timeseries=timeseries,
                profile=profile,
            )
        return result
