"""SeBS experiments (Section 5.2 and Section 6).

Four experiments drive the evaluation:

* **Perf-Cost** — cold and warm performance and cost across providers and
  memory configurations (Figures 3-5, Tables 5-6);
* **Invoc-Overhead** — invocation latency versus payload size with
  clock-drift-corrected timestamps (Figure 6);
* **Eviction-Model** — warm-container survival as a function of the initial
  batch size and waiting time (Figure 7, Table 7);
* **Local characterization** — non-cloud measurements of every benchmark
  (Table 4).

Beyond the paper, **Workload-Replay** replays trace-driven mixed traffic
(Poisson / bursty / diurnal arrivals) through the event-queue engine of
:mod:`repro.workload` and compares the providers under identical load, and
**Workflow-Replay** replays *composed* traffic — DAG workflow executions
from :mod:`repro.workflows` — comparing end-to-end latency, critical-path
decomposition and per-execution cost across providers, and **Overload**
sweeps reserved-concurrency caps under a fixed overload trace
(:mod:`repro.concurrency`), comparing throttle/drop rates, goodput and
queueing delay across providers, and **Resilience** replays a retry-storm
scenario with an injected outage (:mod:`repro.faults`) under naive and
breaker-equipped clients (:mod:`repro.resilience`), demonstrating
metastable failure and breaker-driven recovery.

Each experiment is a plain object configured by
:class:`~repro.config.ExperimentConfig`; ``run()`` returns typed result
objects that the reporting layer formats into the paper's tables and figure
series.
"""

from .base import deploy_benchmark, ExperimentRunner
from .characterization import CharacterizationExperiment
from .eviction_model import EvictionModelExperiment, EvictionObservation, EvictionParameters
from .invocation_overhead import InvocationOverheadExperiment, PayloadLatencyObservation
from .perf_cost import PerfCostConfigResult, PerfCostExperiment, PerfCostResult
from .cost_analysis import CostAnalysis, ResourceUsageEntry
from .faas_vs_iaas import FaasVsIaasExperiment, FaasVsIaasRow
from .workload_replay import (
    DEFAULT_DEPLOYMENTS,
    WorkloadDeployment,
    WorkloadReplayExperiment,
    WorkloadReplayResult,
)
from .workflow_replay import WorkflowExperimentResult, WorkflowReplayExperiment
from .overload import (
    OverloadExperiment,
    OverloadExperimentResult,
    OverloadSweepPoint,
)
from .resilience import (
    GoodputWindow,
    ResilienceExperiment,
    ResilienceExperimentResult,
    ResilienceVariantResult,
)

__all__ = [
    "deploy_benchmark",
    "ExperimentRunner",
    "CharacterizationExperiment",
    "EvictionModelExperiment",
    "EvictionObservation",
    "EvictionParameters",
    "InvocationOverheadExperiment",
    "PayloadLatencyObservation",
    "PerfCostConfigResult",
    "PerfCostExperiment",
    "PerfCostResult",
    "CostAnalysis",
    "ResourceUsageEntry",
    "FaasVsIaasExperiment",
    "FaasVsIaasRow",
    "DEFAULT_DEPLOYMENTS",
    "WorkloadDeployment",
    "WorkloadReplayExperiment",
    "WorkloadReplayResult",
    "WorkflowExperimentResult",
    "WorkflowReplayExperiment",
    "OverloadExperiment",
    "OverloadExperimentResult",
    "OverloadSweepPoint",
    "GoodputWindow",
    "ResilienceExperiment",
    "ResilienceExperimentResult",
    "ResilienceVariantResult",
]
