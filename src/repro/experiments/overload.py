"""The Overload experiment: providers under concurrency pressure.

The paper's Table 2 characterizes the providers' *static* concurrency
limits; this experiment probes the *dynamic* consequences.  A fixed
two-source traffic mix — a bursty synchronous HTTP endpoint plus a
queue-triggered asynchronous worker — is replayed against every provider
at several reserved-concurrency levels (:mod:`repro.concurrency`).  As the
cap tightens, the same trace produces rising 429 rates, client retries,
admission-queue backlog and age-based drops; the sweep reports the
throttle/drop rates, goodput, queueing delay and cost at each level, so
the overload behaviour of the platforms can be compared under identical
pressure.

Per the billing rules, throttled and dropped requests cost nothing while
retried-then-admitted requests bill exactly once — the cost column of the
sweep therefore *falls* as the cap tightens, quantifying the work the
limiter sheds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..concurrency import OverloadConfig
from ..config import Provider, TriggerType
from ..simulator.providers import create_platform
from ..workload.arrivals import BurstyArrivals, PoissonArrivals
from ..workload.engine import WorkloadResult
from ..workload.trace import MergedWorkloadTrace, WorkloadTrace
from .base import ExperimentRunner, deploy_benchmark

#: Function names of the canned overload deployment.
SYNC_FUNCTION = "hot-api"
ASYNC_FUNCTION = "queue-worker"


@dataclass(frozen=True)
class OverloadSweepPoint:
    """Outcome of one (provider, reserved-concurrency) sweep cell."""

    provider: Provider
    #: The per-function cap of this cell (``None`` = account limit only).
    reserved_concurrency: int | None
    retry_policy: str
    invocations: int
    executed: int
    throttled: int
    dropped: int
    retries: int
    queued: int
    queue_delay_s_total: float
    failures: int
    cold_starts: int
    cost_usd: float
    simulated_span_s: float

    @property
    def throttle_rate(self) -> float:
        return self.throttled / self.invocations if self.invocations else 0.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.invocations if self.invocations else 0.0

    @property
    def goodput_per_s(self) -> float:
        """Successfully executed invocations per second of simulated time."""
        if self.simulated_span_s <= 0:
            return 0.0
        return (self.executed - self.failures) / self.simulated_span_s

    @property
    def mean_queue_delay_s(self) -> float:
        return self.queue_delay_s_total / self.queued if self.queued else 0.0

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "reserved": self.reserved_concurrency if self.reserved_concurrency is not None else "-",
            "invocations": self.invocations,
            "executed": self.executed,
            "throttled": self.throttled,
            "throttle_pct": round(100.0 * self.throttle_rate, 2),
            "dropped": self.dropped,
            "retries": self.retries,
            "queue_delay_ms_mean": round(1000.0 * self.mean_queue_delay_s, 2),
            "goodput_per_s": round(self.goodput_per_s, 2),
            "cost_usd": round(self.cost_usd, 8),
        }


@dataclass
class OverloadExperimentResult:
    """Sweep outcomes, one point per (provider, reserved level)."""

    points: list[OverloadSweepPoint] = field(default_factory=list)
    trace_invocations: int = 0
    duration_s: float = 0.0

    def to_rows(self) -> list[dict]:
        return [point.to_row() for point in self.points]

    def by_provider(self, provider: Provider) -> list[OverloadSweepPoint]:
        return [point for point in self.points if point.provider is provider]


class OverloadExperiment(ExperimentRunner):
    """Sweeps reserved-concurrency levels under a fixed overload trace."""

    def run(
        self,
        providers: tuple[Provider, ...] = (Provider.AWS, Provider.GCP, Provider.AZURE),
        reserved_levels: tuple[int | None, ...] = (2, 8, 32, None),
        retry_policy: str = "exponential",
        max_retries: int = 3,
        duration_s: float = 60.0,
        sync_rate_per_s: float = 30.0,
        async_rate_per_s: float = 20.0,
        admission_queue_depth: int = 200,
        admission_max_age_s: float = 10.0,
        workers: int | None = None,
        supervision=None,
    ) -> OverloadExperimentResult:
        """Replay the same overload trace at every (provider, cap) cell.

        The trace is synthesized once (seeded by the experiment config) and
        shared across all cells, so differences between rows are
        attributable to the limiter, not the workload.  ``workers`` routes
        each replay through the sharded parallel path — identical results
        by the per-function throttle-state isolation; ``supervision`` adds
        the shard recovery ladder (:class:`~repro.parallel.SupervisorConfig`)
        to every cell's replay.
        """
        trace = self._build_trace(duration_s, sync_rate_per_s, async_rate_per_s)
        result = OverloadExperimentResult(
            trace_invocations=len(trace), duration_s=duration_s
        )
        for provider in providers:
            for reserved in reserved_levels:
                overload = OverloadConfig(
                    reserved_concurrency=reserved,
                    retry_policy=retry_policy,
                    max_retries=max_retries,
                    admission_queue_depth=admission_queue_depth,
                    admission_max_age_s=admission_max_age_s,
                )
                platform = create_platform(
                    provider, replace(self.simulation, overload=overload)
                )
                for fname in (SYNC_FUNCTION, ASYNC_FUNCTION):
                    deploy_benchmark(
                        platform,
                        "dynamic-html",
                        memory_mb=256 if platform.limits.memory_static else 0,
                        language=self.language,
                        input_size=self.input_size,
                        function_name=fname,
                    )
                replay = platform.run_workload(
                    trace, keep_records=False, workers=workers, supervision=supervision
                )
                result.points.append(
                    self._point(provider, reserved, retry_policy, replay)
                )
        return result

    def _build_trace(
        self, duration_s: float, sync_rate_per_s: float, async_rate_per_s: float
    ) -> MergedWorkloadTrace:
        seed = self.config.seed
        return WorkloadTrace.merge(
            WorkloadTrace.synthesize(
                SYNC_FUNCTION,
                BurstyArrivals(
                    on_rate_per_s=4.0 * sync_rate_per_s,
                    mean_on_s=max(1.0, duration_s / 20.0),
                    mean_off_s=max(3.0, 3.0 * duration_s / 20.0),
                ),
                duration_s=duration_s,
                rng=seed + 1,
            ),
            WorkloadTrace.synthesize(
                ASYNC_FUNCTION,
                PoissonArrivals(async_rate_per_s),
                duration_s=duration_s,
                rng=seed + 2,
                trigger=TriggerType.QUEUE,
            ),
        )

    @staticmethod
    def _point(
        provider: Provider,
        reserved: int | None,
        retry_policy: str,
        replay: WorkloadResult,
    ) -> OverloadSweepPoint:
        return OverloadSweepPoint(
            provider=provider,
            reserved_concurrency=reserved,
            retry_policy=retry_policy,
            invocations=replay.invocations,
            # Independently counted (not invocations - throttled - dropped),
            # so the sweep's conservation assertion is a real check.
            executed=replay.executed_count,
            throttled=replay.throttled_count,
            dropped=replay.dropped_count,
            retries=replay.retry_count,
            queued=replay.queued_count,
            queue_delay_s_total=replay.queue_delay_s,
            failures=replay.failure_count,
            cold_starts=replay.cold_start_count,
            cost_usd=replay.total_cost_usd,
            simulated_span_s=replay.simulated_span_s,
        )
