"""FaaS versus IaaS comparison (Section 6.2 Q4, Table 5).

The experiment runs the same benchmarks on three deployments:

* **IaaS, Local** — a persistent ``t2.micro``-class VM with data on local
  disk;
* **IaaS, S3** — the same VM but with benchmark data in cloud object storage
  (the fair comparison, since functions must use cloud storage);
* **FaaS** — warm AWS Lambda executions at the memory configuration where the
  benchmark reaches its performance plateau.

It reports the median warm execution time of each deployment and the
FaaS-over-IaaS overhead factors, plus the sustainable request rate of the VM
used by the break-even analysis of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import Provider
from ..exceptions import ExperimentError
from ..simulator.iaas import IaaSPlatform
from .base import ExperimentRunner, deploy_benchmark

#: Memory configuration (MB) at which each benchmark reaches its plateau on
#: AWS Lambda, as reported in Table 5.
TABLE5_FAAS_MEMORY: dict[str, int] = {
    "uploader": 1024,
    "thumbnailer": 1024,
    "compression": 1024,
    "image-recognition": 3008,
    "graph-bfs": 1536,
}


@dataclass(frozen=True)
class FaasVsIaasRow:
    """One benchmark's row of Table 5."""

    benchmark: str
    iaas_local_s: float
    iaas_cloud_storage_s: float
    faas_s: float
    faas_memory_mb: int
    iaas_local_requests_per_hour: float
    iaas_cloud_requests_per_hour: float

    @property
    def overhead_vs_local(self) -> float:
        return self.faas_s / self.iaas_local_s if self.iaas_local_s > 0 else float("inf")

    @property
    def overhead_vs_cloud_storage(self) -> float:
        return self.faas_s / self.iaas_cloud_storage_s if self.iaas_cloud_storage_s > 0 else float("inf")

    def to_row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "iaas_local_s": round(self.iaas_local_s, 3),
            "iaas_s3_s": round(self.iaas_cloud_storage_s, 3),
            "faas_s": round(self.faas_s, 3),
            "overhead": round(self.overhead_vs_local, 2),
            "overhead_s3": round(self.overhead_vs_cloud_storage, 2),
            "memory_mb": self.faas_memory_mb,
            "iaas_local_req_per_hour": round(self.iaas_local_requests_per_hour),
            "iaas_s3_req_per_hour": round(self.iaas_cloud_requests_per_hour),
        }


@dataclass
class FaasVsIaasResult:
    rows: list[FaasVsIaasRow] = field(default_factory=list)

    def row_for(self, benchmark: str) -> FaasVsIaasRow:
        for row in self.rows:
            if row.benchmark == benchmark:
                return row
        raise ExperimentError(f"no FaaS-vs-IaaS measurement for benchmark {benchmark!r}")

    def to_rows(self) -> list[dict]:
        return [row.to_row() for row in self.rows]


class FaasVsIaasExperiment(ExperimentRunner):
    """Drives the Table 5 comparison."""

    def _measure_iaas(self, benchmark_name: str, use_cloud_storage: bool, samples: int) -> tuple[float, float]:
        """Return (median warm time, sustainable requests/hour) on the VM."""
        platform = IaaSPlatform(simulation=self.simulation, registry=None, use_cloud_storage=use_cloud_storage)
        fname = deploy_benchmark(
            platform, benchmark_name, memory_mb=1024, language=self.language, input_size=self.input_size
        )
        records = [platform.invoke(fname, payload={}) for _ in range(samples)]
        times = [r.provider_time_s for r in records if r.success]
        if not times:
            raise ExperimentError(f"IaaS execution of {benchmark_name!r} produced no successful runs")
        median = float(np.median(times))
        return median, 3600.0 / median

    def _measure_faas(self, benchmark_name: str, memory_mb: int, samples: int) -> float:
        """Median warm provider time on AWS Lambda at ``memory_mb``."""
        platform = self.make_platform(Provider.AWS)
        fname = deploy_benchmark(
            platform, benchmark_name, memory_mb=memory_mb, language=self.language, input_size=self.input_size
        )
        # Warm the sandbox, then measure sequential warm executions.
        platform.invoke(fname, payload={})
        times = []
        while len(times) < samples:
            record = platform.invoke(fname, payload={})
            if record.success and not record.is_cold:
                times.append(record.provider_time_s)
        return float(np.median(times))

    def run_benchmark(self, benchmark_name: str, faas_memory_mb: int | None = None) -> FaasVsIaasRow:
        samples = max(10, self.config.samples // 4)
        memory = faas_memory_mb or TABLE5_FAAS_MEMORY.get(benchmark_name, 1024)
        iaas_local_s, local_rate = self._measure_iaas(benchmark_name, use_cloud_storage=False, samples=samples)
        iaas_cloud_s, cloud_rate = self._measure_iaas(benchmark_name, use_cloud_storage=True, samples=samples)
        faas_s = self._measure_faas(benchmark_name, memory, samples=samples)
        return FaasVsIaasRow(
            benchmark=benchmark_name,
            iaas_local_s=iaas_local_s,
            iaas_cloud_storage_s=iaas_cloud_s,
            faas_s=faas_s,
            faas_memory_mb=memory,
            iaas_local_requests_per_hour=local_rate,
            iaas_cloud_requests_per_hour=cloud_rate,
        )

    def run(self, benchmarks: tuple[str, ...] | None = None) -> FaasVsIaasResult:
        names = benchmarks or tuple(TABLE5_FAAS_MEMORY)
        return FaasVsIaasResult(rows=[self.run_benchmark(name) for name in names])
