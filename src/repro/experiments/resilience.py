"""The Resilience experiment: retry storms, metastable failure and recovery.

A fixed synchronous trace is replayed through the same capacity-limited
platform twice, with the same fault schedule — a full outage window in the
middle of the trace — and only the *client* changed:

* the **naive** client retries every error aggressively — a short,
  tightly-capped backoff ladder with *no jitter* and a deep retry budget,
  and no circuit breaker.  The outage turns every in-flight request into
  a poller hammering the platform twice a second; when the platform
  recovers, the accumulated herd and the fresh arrivals compete for
  admission slots, so a typical request only admits after several 429
  rounds — past the client staleness deadline.  The work still executes
  and bills, but the caller is long gone, so the platform runs saturated
  on worthless work while fresh requests join the retry storm themselves:
  each failed admission adds another 2-per-second poller.  The amplified
  load is self-sustaining at an offered load the platform handled
  comfortably before the fault — the *metastable failure* state of
  Bronson et al., a congested equilibrium the system does not leave on
  its own.  Goodput stays collapsed long after the fault has cleared.
* the **resilient** client adds a per-function circuit breaker and full
  jitter.  The breaker trips shortly after the outage begins and sheds
  load locally (short-circuited requests are terminal, so no retry backlog
  forms); after the cooldown its probes observe the recovered platform,
  the breaker closes, and goodput returns to the pre-fault level almost
  immediately.

The experiment quantifies the contrast as *post-recovery goodput relative
to pre-outage goodput* per variant, plus a bucketed goodput curve for
plotting the collapse and recovery.  Both replays draw from identical
per-function RNG streams, so the comparison is deterministic and
shard-stable (``workers`` reproduces it bit-identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..concurrency import OverloadConfig
from ..config import Provider
from ..exceptions import ConfigurationError
from ..faults import FaultPlaneConfig, OutageWindow
from ..reporting.summaries import replay_summary
from ..resilience import CircuitBreakerConfig, ResilienceConfig
from ..simulator.providers import create_platform
from ..workload.arrivals import PoissonArrivals
from ..workload.engine import WorkloadResult
from ..workload.trace import WorkloadTrace
from .base import ExperimentRunner, deploy_benchmark

#: Function name of the canned resilience deployment.
STORM_FUNCTION = "storm-api"

#: The two canned client variants replayed against the same fault schedule.
VARIANT_NAMES = ("naive", "resilient")


@dataclass(frozen=True)
class GoodputWindow:
    """Goodput measured over one submission-time window of the replay."""

    start_s: float
    end_s: float
    #: Requests submitted inside the window.
    submitted: int
    #: Requests submitted inside the window that returned a success to the
    #: client (stale responses do not count — nobody was waiting).
    successes: int

    @property
    def goodput_per_s(self) -> float:
        width = self.end_s - self.start_s
        return self.successes / width if width > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "submitted": self.submitted,
            "successes": self.successes,
            "goodput_per_s": self.goodput_per_s,
        }


@dataclass(frozen=True)
class ResilienceVariantResult:
    """One client variant's replay against the shared fault schedule."""

    name: str
    retry_policy: str
    breaker_enabled: bool
    invocations: int
    executed: int
    #: Executed-but-failed requests; under this scenario these are almost
    #: entirely stale responses (admitted past the client deadline).
    failures: int
    throttled: int
    dropped: int
    faulted: int
    short_circuited: int
    hedges: int
    retries: int
    cost_usd: float
    #: Goodput before the outage begins (after warm-up).
    pre: GoodputWindow
    #: Goodput after the outage has ended and the recovery margin passed.
    post: GoodputWindow
    #: ``(bucket_start_s, submitted, successes)`` per bucket over the whole
    #: trace, for plotting the collapse/recovery curve.
    curve: tuple[tuple[float, int, int], ...]
    #: Host wall clock of this variant's replay, and the derived
    #: invocations-per-wall-second figure — measurements of *this* run,
    #: reported alongside the simulation outputs so every CLI subcommand's
    #: ``--output`` carries the same replay block.
    wall_clock_s: float = 0.0
    throughput_per_s: float = 0.0
    #: Supervision report dict when the replay ran supervised sharded.
    supervision: dict | None = None

    @property
    def recovery_ratio(self) -> float:
        """Post-recovery goodput as a fraction of pre-outage goodput."""
        if self.pre.goodput_per_s <= 0:
            return 0.0
        return self.post.goodput_per_s / self.pre.goodput_per_s

    def to_dict(self, include_replay: bool = True) -> dict:
        """Document form.  ``include_replay=False`` drops the host-side
        replay block (wall clock, throughput) — the simulation outputs
        alone, which is what serial-vs-sharded bit-identity gates compare:
        host timings legitimately differ between two runs of the same
        replay."""
        document = {
            "name": self.name,
            "retry_policy": self.retry_policy,
            "breaker_enabled": self.breaker_enabled,
            "invocations": self.invocations,
            "executed": self.executed,
            "failures": self.failures,
            "throttled": self.throttled,
            "dropped": self.dropped,
            "faulted": self.faulted,
            "short_circuited": self.short_circuited,
            "hedges": self.hedges,
            "retries": self.retries,
            "cost_usd": self.cost_usd,
            "pre": self.pre.to_dict(),
            "post": self.post.to_dict(),
            "recovery_ratio": self.recovery_ratio,
            "curve": [list(bucket) for bucket in self.curve],
        }
        if include_replay:
            document["replay"] = replay_summary(self)
        return document


@dataclass
class ResilienceExperimentResult:
    """Both client variants against the shared outage, plus the scenario."""

    provider: Provider = Provider.AWS
    duration_s: float = 0.0
    outage_start_s: float = 0.0
    outage_end_s: float = 0.0
    variants: list[ResilienceVariantResult] = field(default_factory=list)

    def variant(self, name: str) -> ResilienceVariantResult:
        for entry in self.variants:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def to_dict(self, include_replay: bool = True) -> dict:
        """Document form; see :meth:`ResilienceVariantResult.to_dict` for
        ``include_replay``."""
        return {
            "provider": self.provider.value,
            "duration_s": self.duration_s,
            "outage_start_s": self.outage_start_s,
            "outage_end_s": self.outage_end_s,
            "variants": {
                entry.name: entry.to_dict(include_replay=include_replay)
                for entry in self.variants
            },
        }


class ResilienceExperiment(ExperimentRunner):
    """Replays the retry-storm scenario with naive and resilient clients."""

    def run(
        self,
        provider: Provider = Provider.AWS,
        duration_s: float = 120.0,
        rate_per_s: float = 14.0,
        reserved_concurrency: int = 8,
        outage_start_s: float = 40.0,
        outage_duration_s: float = 15.0,
        stale_after_s: float = 1.5,
        naive_retry: tuple[float, float, int] = (0.25, 0.5, 60),
        resilient_retry: tuple[float, float, int] = (0.5, 8.0, 6),
        breaker: CircuitBreakerConfig | None = None,
        warmup_s: float = 10.0,
        recovery_margin_s: float = 20.0,
        bucket_s: float = 5.0,
        workers: int | None = None,
        supervision=None,
    ) -> ResilienceExperimentResult:
        """Replay the shared storm trace once per client variant.

        The trace, the platform capacity and the fault schedule are
        identical across variants; every difference between the two goodput
        curves is attributable to the client policy.  The measurement
        windows bracket the outage: ``pre`` is ``[warmup_s,
        outage_start_s)`` and ``post`` is ``[outage end + recovery_margin_s,
        duration_s)`` — the margin gives the resilient client's breaker
        time to cool down and probe, so what ``post`` measures is the
        *steady state* each client converges back to, not the transient.

        ``naive_retry`` and ``resilient_retry`` are ``(base_delay_s,
        max_delay_s, max_retries)`` ladders.  The naive default is the
        storm-prone anti-pattern — a tight cap (every retry lands within
        half a second, unjittered) and a deep budget; the resilient
        default is a conventional jittered exponential ladder with a
        shallow budget.
        """
        outage_end_s = outage_start_s + outage_duration_s
        if not warmup_s < outage_start_s:
            raise ConfigurationError("warm-up must end before the outage starts")
        if not outage_end_s + recovery_margin_s < duration_s:
            raise ConfigurationError(
                "the trace must extend past the outage plus the recovery margin"
            )
        if breaker is None:
            breaker = CircuitBreakerConfig(
                window=20,
                min_calls=5,
                failure_threshold=0.5,
                cooldown_s=max(2.0, outage_duration_s / 3.0),
                half_open_probes=3,
            )
        trace = WorkloadTrace.synthesize(
            STORM_FUNCTION,
            PoissonArrivals(rate_per_s),
            duration_s=duration_s,
            rng=self.config.seed + 11,
        )
        faults = FaultPlaneConfig(
            outages=(OutageWindow(start_s=outage_start_s, duration_s=outage_duration_s),)
        )
        result = ResilienceExperimentResult(
            provider=provider,
            duration_s=duration_s,
            outage_start_s=outage_start_s,
            outage_end_s=outage_end_s,
        )
        for name in VARIANT_NAMES:
            resilient = name == "resilient"
            retry_policy = "exponential" if resilient else "no-jitter"
            base_delay_s, max_delay_s, max_retries = (
                resilient_retry if resilient else naive_retry
            )
            overload = OverloadConfig(
                reserved_concurrency=reserved_concurrency,
                retry_policy=retry_policy,
                max_retries=max_retries,
                retry_base_delay_s=base_delay_s,
                retry_max_delay_s=max_delay_s,
            )
            resilience = ResilienceConfig(
                breaker=breaker if resilient else None,
                retry_policy=retry_policy,
                max_retries=max_retries,
                retry_base_delay_s=base_delay_s,
                retry_max_delay_s=max_delay_s,
                stale_after_s=stale_after_s,
            )
            platform = create_platform(
                provider,
                replace(self.simulation, overload=overload, resilience=resilience, faults=faults),
            )
            deploy_benchmark(
                platform,
                "dynamic-html",
                memory_mb=256 if platform.limits.memory_static else 0,
                language=self.language,
                input_size=self.input_size,
                function_name=STORM_FUNCTION,
            )
            replay = platform.run_workload(
                trace, keep_records=True, workers=workers, supervision=supervision
            )
            result.variants.append(
                self._variant_result(
                    name,
                    retry_policy,
                    resilient,
                    replay,
                    duration_s=duration_s,
                    pre_window=(warmup_s, outage_start_s),
                    post_window=(outage_end_s + recovery_margin_s, duration_s),
                    bucket_s=bucket_s,
                )
            )
        return result

    @staticmethod
    def _variant_result(
        name: str,
        retry_policy: str,
        breaker_enabled: bool,
        replay: WorkloadResult,
        duration_s: float,
        pre_window: tuple[float, float],
        post_window: tuple[float, float],
        bucket_s: float,
    ) -> ResilienceVariantResult:
        # Records carry absolute clock times; a fresh platform's clock
        # starts at zero, so ``submitted_at`` is directly trace-relative.
        submitted = [0] * (int(duration_s / bucket_s) + 1)
        succeeded = [0] * len(submitted)
        for record in replay.records:
            bucket = min(len(submitted) - 1, int(record.submitted_at / bucket_s))
            submitted[bucket] += 1
            if record.success:
                succeeded[bucket] += 1
        curve = tuple(
            (index * bucket_s, submitted[index], succeeded[index])
            for index in range(len(submitted))
        )
        return ResilienceVariantResult(
            name=name,
            retry_policy=retry_policy,
            breaker_enabled=breaker_enabled,
            invocations=replay.invocations,
            executed=replay.executed_count,
            failures=replay.failure_count,
            throttled=replay.throttled_count,
            dropped=replay.dropped_count,
            faulted=replay.faulted_count,
            short_circuited=replay.short_circuited_count,
            hedges=replay.hedge_count,
            retries=replay.retry_count,
            cost_usd=replay.total_cost_usd,
            pre=_window(replay, pre_window),
            post=_window(replay, post_window),
            curve=curve,
            wall_clock_s=replay.wall_clock_s,
            throughput_per_s=replay.throughput_per_s,
            supervision=replay.supervision,
        )


def _window(replay: WorkloadResult, window: tuple[float, float]) -> GoodputWindow:
    start_s, end_s = window
    submitted = 0
    successes = 0
    for record in replay.records:
        if start_s <= record.submitted_at < end_s:
            submitted += 1
            if record.success:
                successes += 1
    return GoodputWindow(start_s=start_s, end_s=end_s, submitted=submitted, successes=successes)
