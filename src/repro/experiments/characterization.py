"""Local benchmark characterization (Section 6.1, Table 4).

Every benchmark of the suite is executed for real in the local environment to
verify that the selection covers different performance profiles — from
millisecond website backends to second-long multimedia and inference kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchmarks.base import Benchmark, InputSize
from ..benchmarks.registry import BenchmarkRegistry, default_registry
from ..config import Language
from ..metrics.local import LocalCharacterization, LocalMetrics, measure_local
from .base import ExperimentRunner


@dataclass
class CharacterizationExperiment(ExperimentRunner):
    """Runs the local characterization across the whole suite."""

    repetitions: int = 5
    size: InputSize = InputSize.TEST
    registry: BenchmarkRegistry = field(default_factory=default_registry)

    def run_benchmark(self, benchmark: Benchmark) -> LocalMetrics:
        return measure_local(
            benchmark,
            size=self.size,
            repetitions=self.repetitions,
            seed=self.config.seed,
            language=self.language,
        )

    def run(self, benchmarks: tuple[str, ...] | None = None) -> LocalCharacterization:
        """Characterize ``benchmarks`` (all Python benchmarks by default)."""
        names = benchmarks or tuple(
            b.name for b in self.registry if Language.PYTHON in b.languages
        )
        metrics = tuple(self.run_benchmark(self.registry.get(name)) for name in names)
        return LocalCharacterization(metrics=metrics)
