"""The Workflow-Replay experiment: composed traffic against each provider.

Where Workload-Replay (:mod:`repro.experiments.workload_replay`) probes the
providers with flat per-function traffic, this experiment replays *composed*
invocations: a stream of workflow executions — chains, fan-out/fan-in maps
and conditional branches from :mod:`repro.workflows.catalog` — whose stages
trigger each other through queues and storage events.  End-to-end latency
now depends on more than per-invocation speed: the critical-path
decomposition separates how much of each provider's latency is compute,
cold starts and trigger propagation, and the aggregated billing shows what
a whole composition costs per execution.

The same synthesized arrival stream (one seed, one workflow) is replayed
against every provider, so differences between rows are attributable to the
platform, not the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import Provider
from ..utils.rng import RandomStreams
from ..workflows.catalog import WorkflowFunction, standard_workflow
from ..workflows.engine import WorkflowReplayResult
from ..workflows.spec import WorkflowArrival, WorkflowSpec, synthesize_workflow_arrivals
from ..workload.arrivals import PoissonArrivals
from .base import ExperimentRunner, deploy_benchmark


@dataclass
class WorkflowExperimentResult:
    """Per-provider outcomes of replaying one workflow arrival stream."""

    workflow_name: str
    arrivals: list[WorkflowArrival]
    per_provider: dict[Provider, WorkflowReplayResult] = field(default_factory=dict)

    @property
    def executions(self) -> int:
        return len(self.arrivals)

    @property
    def constituent_invocations(self) -> int:
        """Total constituent invocations across providers' replays."""
        return sum(result.invocation_total for result in self.per_provider.values())

    def to_rows(self) -> list[dict]:
        """Per-provider, per-workflow rows for the reporting tables."""
        rows = []
        for provider in sorted(self.per_provider, key=lambda p: p.value):
            for row in self.per_provider[provider].to_rows():
                rows.append({"provider": provider.value, **row})
        return rows

    def summary_rows(self) -> list[dict]:
        """One aggregate row per provider."""
        return [
            self.per_provider[provider].summary_row()
            for provider in sorted(self.per_provider, key=lambda p: p.value)
        ]


class WorkflowReplayExperiment(ExperimentRunner):
    """Replays a workflow arrival stream on each simulated provider."""

    def run(
        self,
        providers: tuple[Provider, ...] = (Provider.AWS, Provider.GCP, Provider.AZURE),
        workflow: str = "pipeline",
        duration_s: float = 300.0,
        rate_per_s: float = 1.0,
        fan_out: int = 8,
        spec: WorkflowSpec | None = None,
        deployments: tuple[WorkflowFunction, ...] | None = None,
        payload: dict | None = None,
        keep_records: bool = True,
        workers: int | None = None,
        supervision=None,
        checkpoint_dir=None,
        resume: bool = False,
        observer_factory=None,
        timeseries=None,
        profile: bool = False,
    ) -> WorkflowExperimentResult:
        """Deploy the functions, synthesize the arrivals once, replay everywhere.

        ``spec`` (with its ``deployments``) overrides the canned
        ``workflow`` name.  ``keep_records=False`` replays in streaming
        mode: per-execution results are folded into per-workflow
        accumulators as executions complete.  ``workers`` uses the sharded
        parallel path (:mod:`repro.parallel`) — identical merged results.
        ``supervision`` and ``checkpoint_dir``/``resume`` pass through to
        the sharded replay (shard recovery ladder + byte-identical crash
        resume); the checkpoint fingerprint covers the provider, so one
        directory serves all of them.  ``observer_factory`` /
        ``timeseries`` / ``profile`` behave exactly as in
        :meth:`WorkloadReplayExperiment.run
        <repro.experiments.workload_replay.WorkloadReplayExperiment.run>`.
        """
        if spec is None:
            spec, deployments = standard_workflow(workflow, fan_out=fan_out)
        elif deployments is None:
            raise ValueError("a custom spec needs its deployments")
        streams = RandomStreams(self.config.seed).fork("workflow-replay", spec.name)
        arrivals = synthesize_workflow_arrivals(
            spec,
            PoissonArrivals(rate_per_s),
            duration_s,
            rng=streams.stream("arrivals"),
            payload=payload,
        )
        result = WorkflowExperimentResult(workflow_name=spec.name, arrivals=arrivals)
        for provider in providers:
            platform = self.make_platform(provider)
            for deployment in deployments:
                deploy_benchmark(
                    platform,
                    deployment.benchmark,
                    memory_mb=deployment.memory_mb if platform.limits.memory_static else 0,
                    language=self.language,
                    input_size=self.input_size,
                    function_name=deployment.function_name,
                )
            result.per_provider[provider] = platform.run_workflows(
                arrivals,
                keep_records=keep_records,
                workers=workers,
                supervision=supervision,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                observer=observer_factory(provider) if observer_factory is not None else None,
                timeseries=timeseries,
                profile=profile,
            )
        return result
