"""The Perf-Cost experiment (Section 6.2).

For every (provider, benchmark, memory configuration) the experiment gathers
N cold invocations — enforcing container eviction before each concurrent
batch — and N warm invocations from repeated batches against warm sandboxes.
Client, provider and benchmark times are recorded for each invocation; the
number of samples is chosen so that the non-parametric confidence interval of
the client time stays within 5% of the median (N = 200 and batches of 50 in
the paper).

The result objects feed Figure 3 (warm performance versus memory),
Figure 4 (cold-start overhead ratios), Figure 5 (cost analysis) and, together
with the IaaS baseline, Table 5 and Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchmarks.registry import default_registry
from ..config import DYNAMIC_MEMORY, Provider, StartType, resolve_memory_sizes
from ..exceptions import ExperimentError
from ..faas.invocation import InvocationRecord
from ..metrics.cloud import CloudMetrics, aggregate_records
from ..models.cold_start import ColdStartOverhead, cold_start_overheads
from .base import ExperimentRunner, deploy_benchmark


@dataclass
class PerfCostConfigResult:
    """Perf-Cost measurements of one (provider, benchmark, memory) triple."""

    provider: Provider
    benchmark: str
    memory_mb: int
    cold_records: list[InvocationRecord] = field(default_factory=list)
    warm_records: list[InvocationRecord] = field(default_factory=list)
    burst_records: list[InvocationRecord] = field(default_factory=list)
    failed_records: list[InvocationRecord] = field(default_factory=list)

    @property
    def viable(self) -> bool:
        """Whether the configuration produced any successful warm invocation."""
        return any(record.success for record in self.warm_records)

    @property
    def error_rate(self) -> float:
        """Fraction of failed invocations among the cold/warm samples gathered.

        Burst records are excluded from the denominator because successful
        cold invocations appear both in ``burst_records`` and ``cold_records``.
        """
        total = len(self.cold_records) + len(self.warm_records) + len(self.failed_records)
        if total == 0:
            return 0.0
        return len(self.failed_records) / total

    def cold_metrics(self) -> CloudMetrics:
        return aggregate_records([r for r in self.cold_records if r.success], start_type=None)

    def warm_metrics(self) -> CloudMetrics:
        return aggregate_records([r for r in self.warm_records if r.success], start_type=None)

    def cold_start_overhead(self) -> ColdStartOverhead:
        """Cold/warm client-time ratio distribution (Figure 4).

        On Azure the "cold" side uses the burst records (mixed cold and warm
        executions of a function app), as in the paper.
        """
        cold_source = self.cold_records
        if self.provider is Provider.AZURE and self.burst_records:
            cold_source = self.burst_records
        cold_times = [r.client_time_s for r in cold_source if r.success]
        warm_times = [r.client_time_s for r in self.warm_records if r.success]
        if not cold_times or not warm_times:
            raise ExperimentError("cold-start overhead needs both cold and warm successful samples")
        return cold_start_overheads(
            benchmark=self.benchmark,
            provider=self.provider.value,
            memory_mb=self.memory_mb,
            cold_times=cold_times,
            warm_times=warm_times,
        )


@dataclass
class PerfCostResult:
    """All configurations of one benchmark across providers."""

    benchmark: str
    configs: list[PerfCostConfigResult] = field(default_factory=list)

    def for_provider(self, provider: Provider) -> list[PerfCostConfigResult]:
        return [c for c in self.configs if c.provider is provider]

    def config(self, provider: Provider, memory_mb: int) -> PerfCostConfigResult:
        for entry in self.configs:
            if entry.provider is provider and entry.memory_mb == memory_mb:
                return entry
        raise ExperimentError(f"no Perf-Cost data for {provider.value} at {memory_mb} MB")

    def best_configuration(self, provider: Provider) -> PerfCostConfigResult:
        """The viable configuration with the lowest median warm client time."""
        viable = [c for c in self.for_provider(provider) if c.viable]
        if not viable:
            raise ExperimentError(f"no viable configuration for provider {provider.value}")
        return min(viable, key=lambda c: c.warm_metrics().client_time.median)


class PerfCostExperiment(ExperimentRunner):
    """Drives the Perf-Cost experiment for one benchmark."""

    def run_configuration(
        self,
        provider: Provider,
        benchmark_name: str,
        memory_mb: int,
    ) -> PerfCostConfigResult:
        """Gather cold and warm samples for one configuration."""
        registry = default_registry()
        registry.get(benchmark_name)  # validate the name early
        platform = self.make_platform(provider)
        fname = deploy_benchmark(
            platform,
            benchmark_name,
            memory_mb=memory_mb,
            language=self.language,
            input_size=self.input_size,
        )
        result = PerfCostConfigResult(provider=provider, benchmark=benchmark_name, memory_mb=memory_mb)
        samples = self.config.samples
        batch = self.config.batch_size

        # Cold samples: enforce eviction before every concurrent batch.
        attempts = 0
        max_attempts = max(4, 4 * (samples // batch + 1))
        while len(result.cold_records) < samples and attempts < max_attempts:
            platform.enforce_cold_start(fname)
            records = platform.invoke_batch(fname, batch)
            result.burst_records.extend(records)
            for record in records:
                if not record.success:
                    result.failed_records.append(record)
                elif record.start_type is StartType.COLD and len(result.cold_records) < samples:
                    result.cold_records.append(record)
            attempts += 1

        # Warm samples: warm the sandboxes up once, then sample repeatedly.
        platform.invoke_batch(fname, batch)
        attempts = 0
        while len(result.warm_records) < samples and attempts < max_attempts:
            records = platform.invoke_batch(fname, batch)
            for record in records:
                if not record.success:
                    result.failed_records.append(record)
                elif record.start_type is StartType.WARM and len(result.warm_records) < samples:
                    result.warm_records.append(record)
            attempts += 1
        return result

    def run_provider(
        self,
        provider: Provider,
        benchmark_name: str,
        memory_sizes: tuple[int, ...] | None = None,
    ) -> list[PerfCostConfigResult]:
        """Sweep the provider's memory configurations for one benchmark.

        Requested sizes are mapped onto the provider's legal configurations —
        e.g. 3008 MB is the AWS maximum but GCP only offers discrete sizes up
        to 4096 MB, so the sweep uses the nearest allowed value there, exactly
        as the paper deploys each provider with its own memory axis.
        """
        sizes = resolve_memory_sizes(provider, memory_sizes)
        sizes = self._legal_memory_sizes(provider, sizes)
        return [self.run_configuration(provider, benchmark_name, memory) for memory in sizes]

    @staticmethod
    def _legal_memory_sizes(provider: Provider, sizes: tuple[int, ...]) -> tuple[int, ...]:
        from ..faas.limits import limits_for

        limits = limits_for(provider)
        mapped: list[int] = []
        for size in sizes:
            if not limits.memory_static:
                legal = DYNAMIC_MEMORY
            elif limits.allowed_memory_mb is not None and size not in limits.allowed_memory_mb:
                candidates = [m for m in limits.allowed_memory_mb if m != DYNAMIC_MEMORY]
                legal = min(candidates, key=lambda m: abs(m - size))
            else:
                legal = int(min(max(size, limits.memory_min_mb), limits.memory_max_mb))
            if legal not in mapped:
                mapped.append(legal)
        return tuple(mapped)

    def run(
        self,
        benchmark_name: str,
        providers: tuple[Provider, ...] = (Provider.AWS, Provider.GCP, Provider.AZURE),
        memory_sizes: tuple[int, ...] | None = None,
    ) -> PerfCostResult:
        """Run the full experiment for ``benchmark_name`` on ``providers``."""
        result = PerfCostResult(benchmark=benchmark_name)
        for provider in providers:
            result.configs.extend(self.run_provider(provider, benchmark_name, memory_sizes))
        return result
