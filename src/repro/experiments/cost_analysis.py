"""Cost analysis of Perf-Cost results (Section 6.3, Figure 5, Table 6).

Three analyses are derived from the Perf-Cost measurements:

* the **cost of one million invocations** for every memory configuration
  (Figure 5a), computed from the billed duration, the declared (AWS/GCP) or
  measured-average (Azure) memory, and the per-request fee;
* the **ratio of used to billed resources** (Figure 5b), quantifying how much
  memory users pay for without using it and how much billed duration is
  rounding;
* the **break-even request rate** against an IaaS deployment (Table 6),
  using the cheapest and fastest viable configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import Provider, StartType
from ..exceptions import ExperimentError
from ..faas.billing import billing_model_for
from ..faas.invocation import InvocationRecord
from ..models.breakeven import BreakEvenPoint, break_even_analysis
from .perf_cost import PerfCostConfigResult, PerfCostResult


@dataclass(frozen=True)
class CostOfMillionEntry:
    """Cost of one million invocations for one configuration (Figure 5a)."""

    provider: Provider
    benchmark: str
    memory_mb: int
    start_type: str
    cost_usd: float

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "benchmark": self.benchmark,
            "memory_mb": self.memory_mb,
            "start_type": self.start_type,
            "cost_per_1M_usd": round(self.cost_usd, 2),
        }


@dataclass(frozen=True)
class ResourceUsageEntry:
    """Used vs billed resources of one configuration (Figure 5b)."""

    provider: Provider
    benchmark: str
    memory_mb: int
    start_type: str
    memory_usage_ratio: float
    duration_usage_ratio: float

    @property
    def combined_usage_ratio(self) -> float:
        """Fraction of billed GB-seconds actually used."""
        return self.memory_usage_ratio * self.duration_usage_ratio

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "benchmark": self.benchmark,
            "memory_mb": self.memory_mb,
            "start_type": self.start_type,
            "memory_usage_pct": round(self.memory_usage_ratio * 100, 1),
            "duration_usage_pct": round(self.duration_usage_ratio * 100, 1),
            "resource_usage_pct": round(self.combined_usage_ratio * 100, 1),
        }


@dataclass(frozen=True)
class OutputTransferCost:
    """Egress cost of returning results directly to users (Section 6.3 Q4)."""

    provider: Provider
    benchmark: str
    output_bytes: int
    cost_per_million_usd: float

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "benchmark": self.benchmark,
            "output_kb": round(self.output_bytes / 1024, 1),
            "egress_cost_per_1M_usd": round(self.cost_per_million_usd, 2),
        }


class CostAnalysis:
    """Turns Perf-Cost results into the cost figures and tables."""

    def __init__(self, result: PerfCostResult):
        self._result = result

    # ------------------------------------------------------------ Figure 5a
    def cost_of_million(self) -> list[CostOfMillionEntry]:
        """Compute the cost of one million invocations per configuration."""
        entries: list[CostOfMillionEntry] = []
        for config in self._result.configs:
            for start_type, records in (("cold", config.cold_records), ("warm", config.warm_records)):
                successes = [r for r in records if r.success]
                if not successes:
                    continue
                entries.append(
                    CostOfMillionEntry(
                        provider=config.provider,
                        benchmark=config.benchmark,
                        memory_mb=config.memory_mb,
                        start_type=start_type,
                        cost_usd=self._median_invocation_cost(config.provider, successes) * 1e6,
                    )
                )
        return entries

    @staticmethod
    def _median_invocation_cost(provider: Provider, records: list[InvocationRecord]) -> float:
        billing = billing_model_for(provider)
        costs = []
        for record in records:
            cost = billing.invocation_cost(
                duration_s=record.provider_time_s,
                declared_memory_mb=record.memory_declared_mb,
                used_memory_mb=record.memory_used_mb,
                output_bytes=0,
                storage_requests=0,
                via_http_api=False,
            )
            costs.append(cost.total)
        return float(np.median(costs))

    # ------------------------------------------------------------ Figure 5b
    def resource_usage(self) -> list[ResourceUsageEntry]:
        """Ratio of used to billed memory and duration (AWS and GCP only).

        Azure is excluded, as in the paper, because its monitor reports
        unreliable memory numbers for this purpose.
        """
        entries: list[ResourceUsageEntry] = []
        for config in self._result.configs:
            if config.provider is Provider.AZURE:
                continue
            for start_type, records in (("cold", config.cold_records), ("warm", config.warm_records)):
                successes = [r for r in records if r.success]
                if not successes or config.memory_mb <= 0:
                    continue
                memory_ratio = float(np.median([r.memory_used_mb for r in successes])) / config.memory_mb
                duration_ratio = float(
                    np.median([r.provider_time_s / r.billed_duration_s for r in successes if r.billed_duration_s > 0])
                )
                entries.append(
                    ResourceUsageEntry(
                        provider=config.provider,
                        benchmark=config.benchmark,
                        memory_mb=config.memory_mb,
                        start_type=start_type,
                        memory_usage_ratio=min(1.0, memory_ratio),
                        duration_usage_ratio=min(1.0, duration_ratio),
                    )
                )
        return entries

    # -------------------------------------------------------------- Table 6
    def break_even(
        self,
        iaas_local_requests_per_hour: float,
        iaas_cloud_requests_per_hour: float,
        vm_hourly_cost_usd: float = 0.0116,
        provider: Provider = Provider.AWS,
    ) -> dict[str, BreakEvenPoint]:
        """Break-even points of the cheapest (Eco) and fastest (Perf) configs."""
        configs = [c for c in self._result.for_provider(provider) if c.viable]
        if not configs:
            raise ExperimentError(f"no viable configurations for provider {provider.value}")

        def cost_per_million(config: PerfCostConfigResult) -> float:
            successes = [r for r in config.warm_records if r.success]
            return self._median_invocation_cost(provider, successes) * 1e6

        eco = min(configs, key=cost_per_million)
        perf = min(configs, key=lambda c: c.warm_metrics().client_time.median)
        points = {}
        for label, config in (("eco", eco), ("perf", perf)):
            points[label] = break_even_analysis(
                benchmark=self._result.benchmark,
                configuration=f"{label}-{config.memory_mb}MB",
                cost_per_million_usd=cost_per_million(config),
                vm_hourly_cost_usd=vm_hourly_cost_usd,
                iaas_local_requests_per_hour=iaas_local_requests_per_hour,
                iaas_cloud_requests_per_hour=iaas_cloud_requests_per_hour,
            )
        return points

    # ----------------------------------------------------------- Section Q4
    def output_transfer_costs(self) -> list[OutputTransferCost]:
        """Egress cost per million invocations of returning results directly."""
        entries: list[OutputTransferCost] = []
        for provider in (Provider.AWS, Provider.GCP, Provider.AZURE):
            configs = [c for c in self._result.for_provider(provider) if c.viable]
            if not configs:
                continue
            config = configs[0]
            successes = [r for r in config.warm_records if r.success]
            output_bytes = int(np.median([r.output_bytes for r in successes]))
            billing = billing_model_for(provider)
            single = billing.invocation_cost(
                duration_s=0.0,
                declared_memory_mb=config.memory_mb,
                used_memory_mb=0.0,
                output_bytes=output_bytes,
                storage_requests=0,
                via_http_api=True,
            )
            # Only the transfer-related charges (request metering + egress).
            transfer_cost = single.request_cost + single.egress_cost
            entries.append(
                OutputTransferCost(
                    provider=provider,
                    benchmark=config.benchmark,
                    output_bytes=output_bytes,
                    cost_per_million_usd=transfer_cost * 1e6,
                )
            )
        return entries
