"""The Eviction-Model experiment (Section 6.5, Table 7, Figure 7).

At a chosen time the driver submits ``D_init`` concurrent invocations, waits
``dT`` seconds, and then checks how many of the containers created for that
batch are still warm.  Sweeping ``D_init``, ``dT``, memory size, execution
time, language and code-package size reveals that the AWS policy is
deterministic and application agnostic: half of the containers disappear
every 380 seconds.  The resulting observations are fed to
:func:`repro.models.eviction.fit_eviction_model` to recover the period and
validate the ``D_warm = D_init * 2^-p`` model with an R² test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..benchmarks.base import InputSize
from ..config import Language, Provider
from ..exceptions import ExperimentError
from ..models.eviction import ContainerEvictionModel, fit_eviction_model
from .base import ExperimentRunner, deploy_benchmark

#: Parameter ranges of the experiment as listed in Table 7.
TABLE7_PARAMETERS: dict[str, tuple] = {
    "d_init": (1, 20),
    "delta_t_s": (1, 1600),
    "memory_mb": (128, 1536),
    "sleep_time_s": (1, 10),
    "code_size": ("8 kB", "250 MB"),
    "language": ("Python", "Node.js"),
}


@dataclass(frozen=True)
class EvictionParameters:
    """One sampled configuration of the eviction experiment."""

    d_init: int
    delta_t_s: float
    memory_mb: int = 128
    language: Language = Language.PYTHON
    code_package_mb: float = 0.008
    function_time_s: float = 1.0

    def describe(self) -> str:
        return (
            f"D_init={self.d_init}, dT={self.delta_t_s:.0f}s, mem={self.memory_mb}MB, "
            f"lang={self.language.value}, code={self.code_package_mb}MB, t={self.function_time_s:.0f}s"
        )


@dataclass(frozen=True)
class EvictionObservation:
    """Outcome of one configuration: how many containers stayed warm."""

    parameters: EvictionParameters
    warm_containers: int

    def to_row(self) -> dict:
        return {
            "d_init": self.parameters.d_init,
            "delta_t_s": self.parameters.delta_t_s,
            "memory_mb": self.parameters.memory_mb,
            "language": self.parameters.language.value,
            "code_package_mb": self.parameters.code_package_mb,
            "function_time_s": self.parameters.function_time_s,
            "warm_containers": self.warm_containers,
        }


@dataclass
class EvictionModelResult:
    """All observations plus the fitted analytical model."""

    provider: Provider
    observations: list[EvictionObservation] = field(default_factory=list)
    model: ContainerEvictionModel | None = None

    def fit(self) -> ContainerEvictionModel:
        if not self.observations:
            raise ExperimentError("cannot fit an eviction model without observations")
        triples = [
            (obs.parameters.d_init, obs.parameters.delta_t_s, obs.warm_containers)
            for obs in self.observations
        ]
        self.model = fit_eviction_model(triples)
        return self.model


class EvictionModelExperiment(ExperimentRunner):
    """Drives the Eviction-Model experiment against a simulated provider."""

    benchmark_name: str = "dynamic-html"

    def observe(
        self,
        provider: Provider,
        parameters: EvictionParameters,
    ) -> EvictionObservation:
        """Run one configuration and count surviving warm containers."""
        platform = self.make_platform(provider)
        fname = deploy_benchmark(
            platform,
            self.benchmark_name,
            memory_mb=parameters.memory_mb if platform.limits.memory_static else 0,
            language=parameters.language,
            input_size=InputSize.TEST,
        )
        if parameters.code_package_mb > 0:
            function = platform.get_function(fname)
            package = function.package.with_size(
                min(parameters.code_package_mb, platform.limits.deployment_limit_mb)
            )
            platform.update_function(fname, code=package)
        # Submit the initial burst; every invocation lands in its own sandbox.
        platform.invoke_batch(fname, parameters.d_init)
        # Wait dT seconds of simulated time, then count warm containers.
        platform.clock.advance(parameters.delta_t_s)
        warm = platform.warm_container_count(fname)
        return EvictionObservation(parameters=parameters, warm_containers=warm)

    def run(
        self,
        provider: Provider = Provider.AWS,
        d_init_values: tuple[int, ...] = (8, 12, 20),
        delta_t_values: tuple[float, ...] = (
            1.0,
            100.0,
            250.0,
            370.0,
            400.0,
            570.0,
            750.0,
            800.0,
            1100.0,
            1200.0,
            1520.0,
            1600.0,
        ),
        memory_values: tuple[int, ...] = (128, 1536),
        languages: tuple[Language, ...] = (Language.PYTHON, Language.NODEJS),
        code_sizes_mb: tuple[float, ...] = (0.008, 250.0),
        function_times_s: tuple[float, ...] = (1.0, 10.0),
    ) -> EvictionModelResult:
        """Sweep the Table 7 parameter space (representative combinations).

        The full cross product is unnecessarily large; as in the paper's
        figures, the sweep varies one dimension at a time around a base
        configuration (Python, 128 MB, 8 kB package, 1 s runtime).
        """
        result = EvictionModelResult(provider=provider)
        base = dict(memory_mb=memory_values[0], language=languages[0], code_package_mb=code_sizes_mb[0], function_time_s=function_times_s[0])
        variations: list[dict] = [dict(base)]
        for memory in memory_values[1:]:
            variations.append({**base, "memory_mb": memory})
        for language in languages[1:]:
            variations.append({**base, "language": language})
        for code_size in code_sizes_mb[1:]:
            variations.append({**base, "code_package_mb": code_size})
        for function_time in function_times_s[1:]:
            variations.append({**base, "function_time_s": function_time})

        for variation in variations:
            for d_init in d_init_values:
                for delta_t in delta_t_values:
                    parameters = EvictionParameters(d_init=d_init, delta_t_s=delta_t, **variation)
                    result.observations.append(self.observe(provider, parameters))
        result.fit()
        return result
