"""The Invoc-Overhead experiment (Section 6.4, Figure 6).

The experiment measures the latency between submitting an invocation and the
start of function execution.  Because client and cloud clocks differ, it
first runs the clock-drift estimation protocol (exchange messages until no
lower round-trip time is seen for N = 10 consecutive iterations), then sweeps
the invocation payload size from 1 kB to 5.9 MB (6 MB is the AWS endpoint
limit) for cold and warm invocations, and fits a linear latency(payload)
model per provider and start type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import Provider, StartType
from ..exceptions import ExperimentError
from ..models.invocation_latency import PayloadLatencyModel, fit_payload_latency
from ..network.clock_sync import ClockDriftEstimator, DriftEstimate
from .base import ExperimentRunner, deploy_benchmark

#: Payload sizes swept by the experiment (bytes): 1 kB up to 5.9 MB.
DEFAULT_PAYLOAD_SIZES: tuple[int, ...] = (
    1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    2 * 1024 * 1024,
    4 * 1024 * 1024,
    int(5.9 * 1024 * 1024),
)


@dataclass(frozen=True)
class PayloadLatencyObservation:
    """Median invocation latency for one payload size and start type."""

    provider: Provider
    start_type: StartType
    payload_bytes: int
    median_latency_s: float
    samples: int

    def to_row(self) -> dict:
        return {
            "provider": self.provider.value,
            "start_type": self.start_type.value,
            "payload_mb": round(self.payload_bytes / (1024 * 1024), 3),
            "median_invocation_time_s": round(self.median_latency_s, 4),
            "samples": self.samples,
        }


@dataclass
class InvocationOverheadResult:
    """All observations and fitted models of the experiment."""

    benchmark: str
    observations: list[PayloadLatencyObservation] = field(default_factory=list)
    drift_estimates: dict[Provider, DriftEstimate] = field(default_factory=dict)
    models: dict[tuple[Provider, StartType], PayloadLatencyModel] = field(default_factory=dict)

    def series(self, provider: Provider, start_type: StartType) -> list[PayloadLatencyObservation]:
        return [
            obs
            for obs in self.observations
            if obs.provider is provider and obs.start_type is start_type
        ]

    def model(self, provider: Provider, start_type: StartType) -> PayloadLatencyModel:
        try:
            return self.models[(provider, start_type)]
        except KeyError:
            raise ExperimentError(
                f"no latency model fitted for {provider.value}/{start_type.value}"
            ) from None


class InvocationOverheadExperiment(ExperimentRunner):
    """Drives the Invoc-Overhead experiment."""

    benchmark_name: str = "dynamic-html"

    def run_provider(
        self,
        provider: Provider,
        payload_sizes: tuple[int, ...] = DEFAULT_PAYLOAD_SIZES,
        repetitions: int | None = None,
    ) -> InvocationOverheadResult:
        return self.run((provider,), payload_sizes=payload_sizes, repetitions=repetitions)

    def run(
        self,
        providers: tuple[Provider, ...] = (Provider.AWS, Provider.GCP, Provider.AZURE),
        payload_sizes: tuple[int, ...] = DEFAULT_PAYLOAD_SIZES,
        repetitions: int | None = None,
    ) -> InvocationOverheadResult:
        """Measure invocation latency versus payload size on ``providers``."""
        repetitions = repetitions or max(5, self.config.samples // 10)
        result = InvocationOverheadResult(benchmark=self.benchmark_name)
        for provider in providers:
            platform = self.make_platform(provider)
            # Clock synchronisation between the benchmark client and the cloud.
            estimator = ClockDriftEstimator(platform.network, stop_after_non_decreasing=10)
            result.drift_estimates[provider] = estimator.estimate(platform.clock.now())

            memory = 256 if platform.limits.memory_static else 0
            fname = deploy_benchmark(
                platform, self.benchmark_name, memory_mb=memory, language=self.language, input_size=self.input_size
            )
            for start_type in (StartType.COLD, StartType.WARM):
                for payload_bytes in payload_sizes:
                    latencies = []
                    for _ in range(repetitions):
                        if start_type is StartType.COLD:
                            platform.enforce_cold_start(fname)
                        else:
                            # Make sure a warm sandbox exists.
                            if platform.warm_container_count(fname) == 0:
                                platform.invoke(fname, payload={}, payload_bytes=1024)
                        record = platform.invoke(fname, payload={}, payload_bytes=payload_bytes)
                        if not record.success:
                            continue
                        # Invocation time: submission to execution start plus
                        # payload transmission, which is what Figure 6 plots.
                        latencies.append(record.invocation_overhead_s)
                    if not latencies:
                        continue
                    result.observations.append(
                        PayloadLatencyObservation(
                            provider=provider,
                            start_type=start_type,
                            payload_bytes=payload_bytes,
                            median_latency_s=float(np.median(latencies)),
                            samples=len(latencies),
                        )
                    )
                series = result.series(provider, start_type)
                if len(series) >= 2:
                    result.models[(provider, start_type)] = fit_payload_latency(
                        provider=provider.value,
                        start_type=start_type.value,
                        payload_bytes=[obs.payload_bytes for obs in series],
                        latencies_s=[obs.median_latency_s for obs in series],
                    )
        return result
