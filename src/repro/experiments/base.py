"""Shared experiment plumbing: deployment helpers and the runner base class."""

from __future__ import annotations

from dataclasses import dataclass

from ..benchmarks.base import InputSize
from ..config import (
    DEFAULT_REGIONS,
    ExperimentConfig,
    FunctionConfig,
    Language,
    Provider,
    SimulationConfig,
)
from ..exceptions import ExperimentError
from ..simulator.platform_sim import SimulatedPlatform
from ..simulator.providers import create_platform


def deploy_benchmark(
    platform: SimulatedPlatform,
    benchmark_name: str,
    memory_mb: int,
    language: Language = Language.PYTHON,
    input_size: InputSize = InputSize.SMALL,
    timeout_s: float | None = None,
    function_name: str | None = None,
) -> str:
    """Package and deploy a benchmark on ``platform``; returns the function name.

    Mirrors the deployment flow of the original toolkit: build the code
    package inside the provider-compatible environment, create the function
    with the requested configuration, and select the input-size preset the
    driver will use for invocations.
    """
    code = platform.package_code(benchmark_name, language)
    limits = platform.limits
    if timeout_s is None:
        timeout_s = min(300.0, limits.time_limit_s)
    config = FunctionConfig(
        memory_mb=memory_mb,
        timeout_s=timeout_s,
        language=language,
        region=DEFAULT_REGIONS[platform.provider],
    )
    fname = function_name or f"{benchmark_name}-{language.value}-{memory_mb}mb"
    platform.create_function(fname, code, config)
    platform.set_input_size(fname, input_size)
    return fname


@dataclass
class ExperimentRunner:
    """Base class bundling the configuration shared by all experiments."""

    config: ExperimentConfig
    simulation: SimulationConfig
    language: Language = Language.PYTHON
    input_size: InputSize = InputSize.SMALL

    def __post_init__(self) -> None:
        if self.config.samples <= 0:
            raise ExperimentError("experiments need a positive sample count")

    def make_platform(self, provider: Provider, execute_kernels: bool = False) -> SimulatedPlatform:
        """Create a fresh simulated deployment of ``provider``."""
        return create_platform(provider, simulation=self.simulation, execute_kernels=execute_kernels)
