"""Shared utilities: virtual clock, seeded randomness, units, serialization."""

from .clock import VirtualClock
from .io import atomic_write_json, atomic_write_text
from .rng import RandomStreams, derive_seed
from .units import (
    GB,
    KB,
    MB,
    bytes_to_mb,
    mb_to_bytes,
    ms_to_s,
    round_up,
    s_to_ms,
)

__all__ = [
    "VirtualClock",
    "RandomStreams",
    "atomic_write_json",
    "atomic_write_text",
    "derive_seed",
    "KB",
    "MB",
    "GB",
    "bytes_to_mb",
    "mb_to_bytes",
    "ms_to_s",
    "s_to_ms",
    "round_up",
]
