"""A virtual clock used by the cloud simulator.

The paper's experiments span hours of wall-clock time (the eviction-model
experiment waits up to 1600 seconds between invocation batches, Table 7).
Running them against real time would be impractical, so the simulator keeps
its own monotonically non-decreasing clock that experiments advance
explicitly.  All latencies produced by the platform models are expressed in
seconds of this virtual time.
"""

from __future__ import annotations

from .. import exceptions


class VirtualClock:
    """Monotonic simulated clock measured in seconds.

    The clock only ever moves forward.  ``advance`` moves it by a delta and
    ``advance_to`` moves it to an absolute timestamp; both reject attempts to
    move backwards, which would indicate a bug in an experiment driver.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise exceptions.ConfigurationError("clock cannot start before time zero")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise exceptions.ConfigurationError("cannot advance the clock by a negative duration")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise exceptions.ConfigurationError(
                f"cannot move the clock backwards (now={self._now:.6f}, requested={timestamp:.6f})"
            )
        self._now = float(timestamp)
        return self._now

    def copy(self) -> "VirtualClock":
        """Return an independent clock starting at the current time."""
        return VirtualClock(self._now)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VirtualClock(now={self._now:.6f})"
