"""Small helpers for unit conversions used throughout the library.

Cloud billing mixes units freely: storage in GB, memory in MB, durations in
milliseconds rounded up to billing granules, transfer sizes in 512 kB
increments.  Centralising the conversions keeps the billing and platform
models readable.
"""

from __future__ import annotations

import math

#: Number of bytes in a kilobyte / megabyte / gigabyte (binary units, as used
#: by cloud memory limits).
KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB


def mb_to_bytes(megabytes: float) -> int:
    """Convert megabytes to bytes (rounded to the nearest byte)."""
    return int(round(megabytes * MB))


def bytes_to_mb(num_bytes: float) -> float:
    """Convert bytes to megabytes."""
    return num_bytes / MB


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1000.0


def round_up(value: float, granularity: float) -> float:
    """Round ``value`` up to the nearest multiple of ``granularity``.

    Used for billed duration (e.g. AWS rounds to 100 ms), billed memory
    (Azure rounds average memory up to 128 MB) and metered payload sizes
    (AWS HTTP APIs meter in 512 kB increments).  Values that are already an
    exact multiple are returned unchanged; a tiny relative tolerance guards
    against floating-point noise introduced by earlier arithmetic.
    """
    if granularity <= 0:
        raise ValueError("granularity must be positive")
    if value <= 0:
        return 0.0
    quotient = value / granularity
    nearest = round(quotient)
    # Snap to the nearest multiple only when that is genuinely float noise:
    # the snapped result must not undershoot the value by more than 1e-9
    # (for large value/granularity ratios the relative tolerance alone could
    # otherwise round *down* by a real amount).
    if math.isclose(quotient, nearest, rel_tol=1e-12, abs_tol=1e-12):
        snapped = nearest * granularity
        if snapped >= value - 1e-9:
            return snapped
    return math.ceil(quotient) * granularity
