"""Atomic file writes for benchmark, baseline, and fixture artifacts.

Every JSON artifact the CI gates consume — ``BENCH_*.json`` emissions,
``benchmarks/baselines.json``, the golden fixtures — is written through
these helpers: the content lands in a same-directory temp file first and
is published with :func:`os.replace`, so an interrupted benchmark or
``make regen-golden`` (Ctrl-C, OOM kill, power loss) can never leave a
truncated or half-written file for ``check_regression.py`` to choke on.
Readers either see the old complete artifact or the new complete one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def atomic_write_text(path: Path | str, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    The temp file is created in the destination directory so the final
    rename never crosses a filesystem boundary.  On any failure the temp
    file is removed and the destination is left untouched.
    """
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding=encoding) as tmp:
            tmp.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (checkpoint payloads)."""
    path = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Path | str, payload: Any, indent: int = 2) -> Path:
    """Serialize ``payload`` and atomically write it with a trailing newline."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
