"""Deterministic random-number management.

Every stochastic component in the simulator (network jitter, scheduler noise,
failure injection, workload input generation) draws from its own named
stream.  Streams are derived from a single master seed so that adding a new
consumer does not perturb the numbers drawn by existing ones, and the whole
simulation stays reproducible across runs and platforms.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, *names: str) -> int:
    """Derive a child seed from ``master_seed`` and a sequence of names.

    The derivation uses SHA-256 over the master seed and the names, which is
    stable across Python versions and machines (unlike ``hash``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(master_seed)).encode("utf-8"))
    for name in names:
        digest.update(b"\x00")
        digest.update(str(name).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def derive_generator(master_seed: int, *names: str) -> np.random.Generator:
    """A fresh generator seeded by ``derive_seed(master_seed, *names)``.

    This is the **shard-stable** derivation: the sequence a consumer draws
    depends only on its *name*, never on how many other consumers exist or
    in what order they were created.  The mergeable reservoirs seed their
    tag streams through it directly; the per-function simulator streams
    (compute/network/reliability/eviction, keyed by function name) get the
    same property through :meth:`RandomStreams.stream`, which applies the
    identical ``derive_seed`` naming scheme.  Replaying any subset of
    functions — e.g. one shard of a partitioned trace — therefore draws
    exactly the numbers the full replay would have drawn for those
    functions, which is what makes sharded parallel replay bit-identical
    to serial replay (see :mod:`repro.parallel`).
    """
    return np.random.default_rng(derive_seed(master_seed, *names))


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 42):
        self._master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, *names: str) -> np.random.Generator:
        """Return the generator registered under ``names``, creating it lazily."""
        key = "/".join(str(name) for name in names)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(derive_seed(self._master_seed, key))
        return self._streams[key]

    def fork(self, *names: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` seeded from a named child seed."""
        return RandomStreams(derive_seed(self._master_seed, "fork", *names))

    def reset(self) -> None:
        """Drop all created streams so the next draw restarts each sequence."""
        self._streams.clear()
