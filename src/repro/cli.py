"""Command-line interface of the SeBS reproduction.

The original toolkit ships a ``sebs.py`` driver; this reproduction provides a
similar entry point::

    sebs-repro list                      # list benchmarks
    sebs-repro table2                    # provider policy comparison
    sebs-repro characterize              # local characterization (Table 4)
    sebs-repro perf-cost thumbnailer     # Perf-Cost experiment (Figure 3/4)
    sebs-repro invoc-overhead            # payload/latency experiment (Figure 6)
    sebs-repro eviction                  # container-eviction experiment (Figure 7)
    sebs-repro faas-vs-iaas              # Table 5 comparison
    sebs-repro workload                  # trace-driven workload replay
    sebs-repro workflow                  # DAG workflow replay (composed invocations)
    sebs-repro fault-storm               # retry-storm / metastable-failure experiment

All experiments run against the simulated providers; ``--samples`` and
``--batch`` trade accuracy for speed.  ``workload`` and ``workflow`` accept
``--output <path>`` to write the machine-readable summary as JSON.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Sequence

from .benchmarks.registry import list_benchmarks
from .concurrency import RETRY_POLICY_NAMES, OverloadConfig
from .config import ExperimentConfig, Provider, SimulationConfig
from .exceptions import CheckpointError, ConfigurationError, ShardReplayError
from .utils.io import atomic_write_json
from .faults import ContainerCrash, FaultPlaneConfig, LatencyStorm, OutageWindow
from .resilience import CircuitBreakerConfig, HedgeConfig, ResilienceConfig
from .experiments.characterization import CharacterizationExperiment
from .experiments.eviction_model import EvictionModelExperiment
from .experiments.faas_vs_iaas import FaasVsIaasExperiment
from .experiments.invocation_overhead import InvocationOverheadExperiment
from .experiments.perf_cost import PerfCostExperiment
from .experiments.workload_replay import WorkloadReplayExperiment
from .experiments.workflow_replay import WorkflowReplayExperiment
from .workflows.catalog import STANDARD_WORKFLOWS
from .workload.scenario import STANDARD_PATTERNS
from .workload.trace import WorkloadTrace
from .reporting import figures
from .reporting.summaries import replay_summary
from .reporting.tables import format_table, table2_platform_limits, table3_applications, table9_insights


def _replay_args(parser: argparse.ArgumentParser, unit: str) -> None:
    """Options shared by the ``workload`` and ``workflow`` replay commands."""
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="streaming-aggregation mode: fold results into accumulators "
        f"as they are produced (O({unit}s) memory) — for very large replays",
    )
    parser.add_argument(
        "--log-retention",
        type=int,
        default=None,
        metavar="N",
        help="keep only the last N provider-log entries per function "
        "(default: unlimited; long replays should set a bound)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="vectorized columnar replay hot path: per-function random "
        "draws are pre-drawn in blocks and records stored as parallel "
        "arrays — bit-identical results, several times faster on large "
        "fast-path replays",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sharded parallel replay across N processes (per-function "
        "shards, deterministically merged — identical results to serial "
        "replay; 1 = in-process sequential sharding)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="S",
        help="supervise the sharded replay: SIGKILL and retry any shard "
        "whose worker heartbeat goes stale for S seconds (requires "
        "--workers; implies supervision with default retries)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        metavar="N",
        help="supervise the sharded replay: retry a failed shard up to N "
        "times with exponential backoff before quarantining it in-process "
        "(requires --workers; implies supervision)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist each completed shard outcome atomically under DIR "
        "(keyed by a plan fingerprint), so an interrupted replay can be "
        "resumed with --resume (requires --workers)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reload intact shard checkpoints from --checkpoint-dir and "
        "replay only the missing shards — byte-identical to an "
        "uninterrupted run",
    )
    parser.add_argument(
        "--reserved-concurrency",
        type=int,
        default=None,
        metavar="N",
        help="enable the overload model with a per-function concurrency cap "
        "of N: over-limit sync invocations are throttled (429 + client "
        "retries), async ones spill into a bounded admission queue",
    )
    parser.add_argument(
        "--retry-policy",
        default=None,
        choices=list(RETRY_POLICY_NAMES),
        help="client backoff policy for throttled sync invocations "
        "(default: exponential with full jitter; implies the overload "
        "model when given without --reserved-concurrency)",
    )
    parser.add_argument(
        "--outage",
        nargs=2,
        type=float,
        action="append",
        default=None,
        metavar=("START", "DURATION"),
        help="inject a region outage window (seconds into the replay; "
        "repeatable) — see also --outage-mode",
    )
    parser.add_argument(
        "--outage-mode",
        default="fail-fast",
        choices=["fail-fast", "hang"],
        help="how outage-window requests fail: immediate fault responses "
        "or hangs until the client timeout (default: fail-fast)",
    )
    parser.add_argument(
        "--crash",
        nargs=2,
        type=float,
        action="append",
        default=None,
        metavar=("AT", "SURVIVE_FRACTION"),
        help="inject a correlated container crash at AT seconds, evicting "
        "warm containers so only SURVIVE_FRACTION survive (repeatable)",
    )
    parser.add_argument(
        "--latency-storm",
        nargs=3,
        type=float,
        action="append",
        default=None,
        metavar=("START", "DURATION", "MULTIPLIER"),
        help="inject a latency storm: compute and network draws are scaled "
        "by MULTIPLIER inside the window (repeatable)",
    )
    parser.add_argument(
        "--breaker",
        action="store_true",
        help="give the simulated clients a per-function circuit breaker "
        "(trips on outage/failure storms, sheds load, probes recovery)",
    )
    parser.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=30.0,
        metavar="S",
        help="breaker OPEN cooldown before recovery probes (default: 30)",
    )
    parser.add_argument(
        "--hedge-delay-s",
        type=float,
        default=None,
        metavar="S",
        help="hedge synchronous requests whose primary attempt is still "
        "running after S seconds (first completion wins, both billed)",
    )
    parser.add_argument(
        "--client-retry-policy",
        default=None,
        choices=list(RETRY_POLICY_NAMES),
        help="client backoff policy for fault responses and stale "
        "resubmissions (default: none — fail fast)",
    )
    parser.add_argument(
        "--stale-after-s",
        type=float,
        default=None,
        metavar="S",
        help="client staleness deadline: executions admitted later than S "
        "seconds after submission are wasted work (billed, recorded as "
        "stale failures; resubmitted when --client-retry-policy is set)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the machine-readable summary (per-provider and "
        f"per-{unit} rows) as JSON instead of only printing tables",
    )
    parser.add_argument(
        "--observe",
        action="store_true",
        help="attach the lifecycle-event observer (typed invocation spans, "
        "container churn, breaker transitions, fault windows) — purely "
        "observational, replay output stays bit-identical; serial replay "
        "only (incompatible with --workers)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the observed event stream as Chrome trace-event JSON "
        "(load in Perfetto / chrome://tracing; implies --observe; with "
        "multiple providers, PATH gets a -<provider> suffix)",
    )
    parser.add_argument(
        "--timeseries-out",
        default=None,
        metavar="PATH",
        help="write windowed simulated-time metrics (goodput, in-flight, "
        "throttle/drop/fault rates, warm pool, latency percentiles) as "
        "CSV — works with --workers and --streaming (exact sharded merge)",
    )
    parser.add_argument(
        "--timeseries-window",
        type=float,
        default=5.0,
        metavar="S",
        help="simulated-time bucket width for --timeseries-out (default: 5)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the replay machinery itself (host wall clock per "
        "phase: planning, shard execution, merge) and print the breakdown",
    )
    parser.add_argument(
        "--providers",
        nargs="+",
        default=["aws", "gcp", "azure"],
        choices=[p.value for p in (Provider.AWS, Provider.GCP, Provider.AZURE)],
        help="providers to evaluate",
    )


def _experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, default=50, help="measurements per configuration")
    parser.add_argument("--batch", type=int, default=20, help="concurrent invocations per batch")
    parser.add_argument("--seed", type=int, default=42, help="simulation seed")
    parser.add_argument(
        "--providers",
        nargs="+",
        default=["aws", "gcp", "azure"],
        choices=[p.value for p in (Provider.AWS, Provider.GCP, Provider.AZURE)],
        help="providers to evaluate",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="sebs-repro", description=__doc__)
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=["debug", "info", "warning", "error"],
        help="logging verbosity (before the subcommand, e.g. "
        "'sebs-repro --log-level info workload ...'); supervisor recovery "
        "actions log at INFO/WARNING (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available benchmarks")
    sub.add_parser("table2", help="provider policy comparison (Table 2)")
    sub.add_parser("table3", help="application suite (Table 3)")
    sub.add_parser("table9", help="insight summary (Table 9)")

    characterize = sub.add_parser("characterize", help="local characterization (Table 4)")
    characterize.add_argument("--repetitions", type=int, default=5)
    characterize.add_argument("--seed", type=int, default=42)

    perf = sub.add_parser("perf-cost", help="Perf-Cost experiment (Figures 3-5)")
    perf.add_argument("benchmark", help="benchmark name, e.g. thumbnailer")
    _experiment_args(perf)

    invoc = sub.add_parser("invoc-overhead", help="invocation overhead experiment (Figure 6)")
    _experiment_args(invoc)

    evict = sub.add_parser("eviction", help="container eviction experiment (Figure 7)")
    evict.add_argument("--seed", type=int, default=42)

    iaas = sub.add_parser("faas-vs-iaas", help="FaaS vs IaaS comparison (Table 5)")
    iaas.add_argument("--samples", type=int, default=50)
    iaas.add_argument("--seed", type=int, default=42)

    workload = sub.add_parser("workload", help="trace-driven workload replay")
    workload.add_argument(
        "--pattern",
        default="mixed",
        choices=list(STANDARD_PATTERNS),
        help="arrival pattern applied to the deployed functions",
    )
    workload.add_argument("--duration", type=float, default=600.0, help="trace duration in simulated seconds")
    workload.add_argument("--rate", type=float, default=2.0, help="mean arrival rate per function (1/s)")
    workload.add_argument("--trace", default=None, help="replay a JSON trace file instead of synthesizing")
    workload.add_argument("--save-trace", default=None, help="write the synthesized trace to a JSON file")
    _replay_args(workload, unit="function")

    workflow = sub.add_parser(
        "workflow", help="DAG workflow replay (composed invocations via async triggers)"
    )
    workflow.add_argument(
        "--workflow",
        default="pipeline",
        choices=list(STANDARD_WORKFLOWS),
        help="canned workflow DAG to replay (chain / fan-out+fan-in map / "
        "conditional branch)",
    )
    workflow.add_argument(
        "--duration", type=float, default=300.0, help="arrival window in simulated seconds"
    )
    workflow.add_argument(
        "--rate", type=float, default=1.0, help="mean workflow arrival rate (1/s)"
    )
    workflow.add_argument(
        "--fan-out", type=int, default=8, help="map cardinality of the fanout workflow"
    )
    _replay_args(workflow, unit="workflow")

    population = sub.add_parser(
        "population",
        help="multi-tenant population replay (synthetic Zipf/diurnal/burst "
        "population, or an ingested Azure invocation-per-minute trace)",
    )
    population.add_argument(
        "--functions",
        type=int,
        default=10_000,
        metavar="N",
        help="synthetic population size (default: 10000)",
    )
    population.add_argument(
        "--duration", type=float, default=600.0, help="replay horizon in simulated seconds"
    )
    population.add_argument(
        "--rate",
        type=float,
        default=200.0,
        metavar="R",
        help="aggregate population arrival rate (1/s), split across "
        "functions by Zipf popularity (default: 200)",
    )
    population.add_argument(
        "--tenants",
        type=int,
        default=None,
        metavar="N",
        help="tenant count (default: one tenant per 8 functions)",
    )
    population.add_argument(
        "--zipf-alpha",
        type=float,
        default=1.1,
        metavar="A",
        help="Zipf popularity exponent; larger = heavier head (default: 1.1)",
    )
    population.add_argument(
        "--ingest",
        default=None,
        metavar="CSV",
        help="replay an Azure Functions invocation-per-minute CSV instead "
        "of synthesizing (overrides the synthetic-population options)",
    )
    population.add_argument(
        "--ingest-limit",
        type=int,
        default=None,
        metavar="N",
        help="ingest only the first N trace rows (slice huge traces)",
    )
    population.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="sharded replay across N processes (bit-identical to serial)",
    )
    population.add_argument(
        "--top-tenants",
        type=int,
        default=10,
        metavar="K",
        help="report the top K tenants by spend (default: 10)",
    )
    population.add_argument(
        "--columnar",
        action="store_true",
        help="vectorized columnar replay hot path (bit-identical, faster)",
    )
    population.add_argument(
        "--log-retention",
        type=int,
        default=None,
        metavar="N",
        help="keep only the last N provider-log entries per function "
        "(large populations should set a small bound)",
    )
    population.add_argument("--seed", type=int, default=42)
    population.add_argument(
        "--provider",
        default="aws",
        choices=[p.value for p in (Provider.AWS, Provider.GCP, Provider.AZURE)],
        help="provider to replay against (single provider: population "
        "deployment happens inside every worker)",
    )
    population.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the machine-readable summary (aggregates + top-tenant "
        "attribution) as JSON",
    )

    storm = sub.add_parser(
        "fault-storm",
        help="retry-storm experiment: metastable failure vs breaker recovery",
    )
    storm.add_argument(
        "--duration", type=float, default=120.0, help="trace duration in simulated seconds"
    )
    storm.add_argument("--rate", type=float, default=14.0, help="arrival rate (1/s)")
    storm.add_argument(
        "--outage-start", type=float, default=40.0, help="outage begin (seconds into the trace)"
    )
    storm.add_argument(
        "--outage-duration", type=float, default=15.0, help="outage length in seconds"
    )
    storm.add_argument("--seed", type=int, default=42)
    storm.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sharded parallel replay across N processes (bit-identical)",
    )
    storm.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the full result (variants, goodput curves) as JSON",
    )
    return parser


def _overload_config(args: argparse.Namespace) -> OverloadConfig | None:
    """Overload model selected by the replay flags (None = disabled)."""
    if args.reserved_concurrency is None and args.retry_policy is None:
        return None
    return OverloadConfig(
        reserved_concurrency=args.reserved_concurrency,
        retry_policy=args.retry_policy or "exponential",
    )


def _fault_config(args: argparse.Namespace) -> FaultPlaneConfig | None:
    """Fault plane selected by the replay flags (None = disabled)."""
    if not (args.outage or args.crash or args.latency_storm):
        return None
    return FaultPlaneConfig(
        outages=tuple(
            OutageWindow(start_s=start, duration_s=duration, mode=args.outage_mode)
            for start, duration in (args.outage or ())
        ),
        crashes=tuple(
            ContainerCrash(at_s=at, survive_fraction=survive)
            for at, survive in (args.crash or ())
        ),
        storms=tuple(
            LatencyStorm(
                start_s=start,
                duration_s=duration,
                compute_multiplier=multiplier,
                network_multiplier=multiplier,
            )
            for start, duration, multiplier in (args.latency_storm or ())
        ),
    )


def _resilience_config(args: argparse.Namespace) -> ResilienceConfig | None:
    """Client resilience stack selected by the replay flags (None = disabled)."""
    if not (
        args.breaker
        or args.hedge_delay_s is not None
        or args.client_retry_policy is not None
        or args.stale_after_s is not None
    ):
        return None
    return ResilienceConfig(
        breaker=CircuitBreakerConfig(cooldown_s=args.breaker_cooldown_s)
        if args.breaker
        else None,
        hedge=HedgeConfig(delay_s=args.hedge_delay_s)
        if args.hedge_delay_s is not None
        else None,
        retry_policy=args.client_retry_policy or "none",
        stale_after_s=args.stale_after_s,
    )


def _supervision_config(args: argparse.Namespace):
    """Supervisor policy selected by the replay flags (None = unsupervised)."""
    if args.shard_timeout is None and args.shard_retries is None:
        return None
    from .parallel import SupervisorConfig

    overrides: dict = {}
    if args.shard_timeout is not None:
        overrides["shard_timeout_s"] = args.shard_timeout
    if args.shard_retries is not None:
        overrides["max_retries"] = args.shard_retries
    return SupervisorConfig(**overrides)


def _write_output(path: str, payload: dict) -> None:
    """Write one machine-readable summary document as JSON (atomically)."""
    atomic_write_json(Path(path), payload)
    print(f"summary written to {path}")


def _observability(args: argparse.Namespace):
    """Resolve the --observe/--trace-out/--timeseries-* flags.

    Returns ``(observer_factory, event_logs, timeseries_spec)``: the
    factory hands each provider its own :class:`~repro.observe.EventLog`
    (collected in ``event_logs``), the spec requests the windowed series.
    """
    event_logs: dict = {}
    observer_factory = None
    if args.observe or args.trace_out is not None:
        from .observe import EventLog

        def observer_factory(provider):
            log = EventLog()
            event_logs[provider] = log
            return log

    timeseries = None
    if args.timeseries_out is not None:
        from .observe import TimeSeriesSpec

        timeseries = TimeSeriesSpec(window_s=args.timeseries_window)
    return observer_factory, event_logs, timeseries


def _provider_path(path: str, provider: Provider, multi: bool) -> Path:
    """Suffix ``path`` with the provider when several providers replay."""
    resolved = Path(path)
    if not multi:
        return resolved
    return resolved.with_name(f"{resolved.stem}-{provider.value}{resolved.suffix}")


def _emit_observability(args: argparse.Namespace, providers, per_provider, event_logs) -> None:
    """Write trace/series files and print profiles for each provider."""
    multi = len(providers) > 1
    for provider in providers:
        replay = per_provider[provider]
        log = event_logs.get(provider)
        if log is not None:
            print(f"{len(log)} lifecycle events observed ({provider.value})")
        if args.trace_out is not None and log is not None:
            from .observe import write_chrome_trace

            path = _provider_path(args.trace_out, provider, multi)
            write_chrome_trace(log.events, path)
            print(f"trace written to {path}")
        if args.timeseries_out is not None and replay.timeseries is not None:
            from .observe import write_timeseries_csv

            path = _provider_path(args.timeseries_out, provider, multi)
            write_timeseries_csv(replay.timeseries, path)
            print(f"time series written to {path}")
        if args.profile and replay.profile is not None:
            print(f"\n# Replay profile ({provider.value})")
            print(format_table(replay.profile.rows()))


def _configs(args: argparse.Namespace) -> tuple[ExperimentConfig, SimulationConfig]:
    samples = getattr(args, "samples", 50)
    batch = getattr(args, "batch", 20)
    seed = getattr(args, "seed", 42)
    return (
        ExperimentConfig(samples=samples, batch_size=batch, seed=seed),
        SimulationConfig(seed=seed),
    )


#: Structured exit codes, one per failure class, for scripted callers.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_CONFIG = 2
EXIT_SHARD_FAILURE = 3
EXIT_CHECKPOINT = 4


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``sebs-repro`` command.

    Returns a structured exit code per failure class: 0 success, 2 invalid
    configuration, 3 sharded replay failed after exhausting supervision
    (the offending shard is reported), 4 checkpoint-store misuse, 1 any
    other library error.
    """
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
    )
    try:
        return _run(args)
    except ShardReplayError as error:
        print(f"shard replay failed: {error}", file=sys.stderr)
        print(
            f"  shard {error.shard_index} (functions: "
            f"{', '.join(error.functions) or '?'}) after {error.attempts} attempt(s); "
            f"{len(error.partial_outcomes)} completed shard(s) salvaged",
            file=sys.stderr,
        )
        return EXIT_SHARD_FAILURE
    except CheckpointError as error:
        print(f"checkpoint error: {error}", file=sys.stderr)
        return EXIT_CHECKPOINT
    except ConfigurationError as error:
        print(f"configuration error: {error}", file=sys.stderr)
        return EXIT_CONFIG


def _run(args: argparse.Namespace) -> int:
    if args.command == "list":
        for name in list_benchmarks():
            print(name)
        return 0
    if args.command == "table2":
        print(format_table(table2_platform_limits()))
        return 0
    if args.command == "table3":
        print(format_table(table3_applications()))
        return 0
    if args.command == "table9":
        print(format_table(table9_insights()))
        return 0

    if args.command == "characterize":
        config = ExperimentConfig(samples=max(2, args.repetitions), seed=args.seed)
        experiment = CharacterizationExperiment(
            config=config, simulation=SimulationConfig(seed=args.seed), repetitions=args.repetitions
        )
        print(format_table(experiment.run().to_rows()))
        return 0

    if args.command == "perf-cost":
        config, simulation = _configs(args)
        providers = tuple(Provider(p) for p in args.providers)
        experiment = PerfCostExperiment(config=config, simulation=simulation)
        result = experiment.run(args.benchmark, providers=providers)
        print("# Figure 3: warm performance")
        print(format_table(figures.figure3_performance_series(result)))
        print("\n# Figure 4: cold start overheads")
        print(format_table(figures.figure4_cold_overhead_series(result)))
        print("\n# Figure 5a: cost of 1M invocations")
        print(format_table(figures.figure5a_cost_series(result)))
        print("\n# Figure 5b: used vs billed resources")
        print(format_table(figures.figure5b_resource_usage_series(result)))
        return 0

    if args.command == "invoc-overhead":
        config, simulation = _configs(args)
        providers = tuple(Provider(p) for p in args.providers)
        experiment = InvocationOverheadExperiment(config=config, simulation=simulation)
        result = experiment.run(providers=providers)
        print(format_table(figures.figure6_invocation_overhead_series(result)))
        return 0

    if args.command == "eviction":
        config = ExperimentConfig(samples=10, seed=args.seed)
        experiment = EvictionModelExperiment(config=config, simulation=SimulationConfig(seed=args.seed))
        result = experiment.run()
        print(format_table(figures.figure7_eviction_series(result)))
        model = result.model
        if model is not None:
            print(f"\nFitted eviction period: {model.period_s:.0f} s (R^2 = {model.r_squared:.4f})")
        return 0

    if args.command == "workload":
        config = ExperimentConfig(samples=1, seed=args.seed)
        simulation = SimulationConfig(
            seed=args.seed,
            log_retention=args.log_retention,
            columnar=args.columnar,
            overload=_overload_config(args),
            faults=_fault_config(args),
            resilience=_resilience_config(args),
        )
        experiment = WorkloadReplayExperiment(config=config, simulation=simulation)
        providers = tuple(Provider(p) for p in args.providers)
        trace = WorkloadTrace.from_json(args.trace) if args.trace else None
        observer_factory, event_logs, timeseries = _observability(args)
        result = experiment.run(
            providers=providers,
            pattern=args.pattern,
            duration_s=args.duration,
            rate_per_s=args.rate,
            trace=trace,
            keep_records=not args.streaming,
            workers=args.workers,
            supervision=_supervision_config(args),
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            observer_factory=observer_factory,
            timeseries=timeseries,
            profile=args.profile,
        )
        if args.save_trace:
            result.trace.to_json(args.save_trace, indent=2)
            print(f"trace written to {args.save_trace}")
        print(f"# Workload replay: {result.scenario_name} "
              f"({result.trace_invocations} invocations over {result.trace_duration_s:.0f}s)")
        print(format_table(result.to_rows()))
        print("\n# Provider summary")
        print(format_table(result.summary_rows()))
        _emit_observability(args, providers, result.per_provider, event_logs)
        if args.output:
            _write_output(
                args.output,
                {
                    "command": "workload",
                    "scenario": result.scenario_name,
                    "invocations": result.trace_invocations,
                    "duration_s": result.trace_duration_s,
                    "seed": args.seed,
                    "providers": result.summary_rows(),
                    "per_function": result.to_rows(),
                    "replay": {
                        provider.value: replay_summary(result.per_provider[provider])
                        for provider in providers
                    },
                },
            )
        return 0

    if args.command == "workflow":
        config = ExperimentConfig(samples=1, seed=args.seed)
        simulation = SimulationConfig(
            seed=args.seed,
            log_retention=args.log_retention,
            columnar=args.columnar,
            overload=_overload_config(args),
            faults=_fault_config(args),
            resilience=_resilience_config(args),
        )
        experiment = WorkflowReplayExperiment(config=config, simulation=simulation)
        providers = tuple(Provider(p) for p in args.providers)
        # The branch workflow routes on the payload; give it a route.
        payload = {"size": "small"} if args.workflow == "branch" else None
        observer_factory, event_logs, timeseries = _observability(args)
        result = experiment.run(
            providers=providers,
            workflow=args.workflow,
            duration_s=args.duration,
            rate_per_s=args.rate,
            fan_out=args.fan_out,
            payload=payload,
            keep_records=not args.streaming,
            workers=args.workers,
            supervision=_supervision_config(args),
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            observer_factory=observer_factory,
            timeseries=timeseries,
            profile=args.profile,
        )
        print(f"# Workflow replay: {result.workflow_name} "
              f"({result.executions} executions over {args.duration:.0f}s)")
        print(format_table(result.to_rows()))
        print("\n# Provider summary")
        print(format_table(result.summary_rows()))
        _emit_observability(args, providers, result.per_provider, event_logs)
        if args.output:
            _write_output(
                args.output,
                {
                    "command": "workflow",
                    "workflow": result.workflow_name,
                    "executions": result.executions,
                    "duration_s": args.duration,
                    "seed": args.seed,
                    "providers": result.summary_rows(),
                    "per_workflow": result.to_rows(),
                    "replay": {
                        provider.value: replay_summary(result.per_provider[provider])
                        for provider in providers
                    },
                },
            )
        return 0

    if args.command == "population":
        from .population import PopulationSpec, TraceIngest, replay_population
        from .simulator.providers import create_platform

        simulation = SimulationConfig(
            seed=args.seed, columnar=args.columnar, log_retention=args.log_retention
        )
        if args.ingest:
            population = TraceIngest.load(args.ingest, limit=args.ingest_limit)
        else:
            population = PopulationSpec(
                n_functions=args.functions,
                duration_s=args.duration,
                aggregate_rate_per_s=args.rate,
                n_tenants=args.tenants,
                zipf_alpha=args.zipf_alpha,
            )
        platform = create_platform(Provider(args.provider), simulation)
        result = replay_population(
            platform,
            population,
            seed=args.seed,
            workers=args.workers,
            top_tenants=args.top_tenants,
        )
        print(
            f"# Population replay: {result.population_name} "
            f"({result.functions_active}/{result.functions_total} functions active, "
            f"{result.invocations} invocations over {population.duration_s:.0f}s)"
        )
        print(format_table([result.result.summary_row() | {"top_tenants": len(result.top_tenants)}]))
        if result.top_tenants:
            print("\n# Top tenants by spend")
            print(format_table([spend.to_row() for spend in result.top_tenants]))
        if args.output:
            _write_output(
                args.output,
                {
                    "command": "population",
                    "seed": args.seed,
                    "provider": args.provider,
                    "workers": args.workers,
                    "population": result.population_name,
                    "functions_total": result.functions_total,
                    "functions_active": result.functions_active,
                    "summary": result.result.summary_row(),
                    "top_tenants": [spend.to_row() for spend in result.top_tenants],
                },
            )
        return 0

    if args.command == "fault-storm":
        from .experiments.resilience import ResilienceExperiment

        config = ExperimentConfig(samples=1, seed=args.seed)
        experiment = ResilienceExperiment(config=config, simulation=SimulationConfig(seed=args.seed))
        result = experiment.run(
            duration_s=args.duration,
            rate_per_s=args.rate,
            outage_start_s=args.outage_start,
            outage_duration_s=args.outage_duration,
            workers=args.workers,
        )
        print(
            f"# Fault storm: outage [{result.outage_start_s:.0f}s, "
            f"{result.outage_end_s:.0f}s) in a {result.duration_s:.0f}s trace"
        )
        rows = []
        for variant in result.variants:
            rows.append(
                {
                    "variant": variant.name,
                    "retry policy": variant.retry_policy,
                    "breaker": "yes" if variant.breaker_enabled else "no",
                    "requests": variant.invocations,
                    "retries": variant.retries,
                    "short-circuited": variant.short_circuited,
                    "pre goodput/s": f"{variant.pre.goodput_per_s:.2f}",
                    "post goodput/s": f"{variant.post.goodput_per_s:.2f}",
                    "recovery": f"{variant.recovery_ratio:.2f}",
                }
            )
        print(format_table(rows))
        if args.output:
            _write_output(args.output, {"command": "fault-storm", "seed": args.seed, **result.to_dict()})
        return 0

    if args.command == "faas-vs-iaas":
        config = ExperimentConfig(samples=args.samples, seed=args.seed)
        experiment = FaasVsIaasExperiment(config=config, simulation=SimulationConfig(seed=args.seed))
        result = experiment.run()
        print(format_table(result.to_rows()))
        return 0

    return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
