"""SeBS reproduction: a Serverless Benchmark Suite for FaaS computing.

This package reproduces the system described in *SeBS: A Serverless Benchmark
Suite for Function-as-a-Service Computing* (Copik et al., ACM Middleware
2021) as an offline, fully simulated library:

* :mod:`repro.benchmarks` — the application suite (web apps, multimedia,
  utilities, ML inference, graph processing) with real executable kernels;
* :mod:`repro.faas` — the abstract FaaS platform model: packaging, limits,
  triggers, billing, invocation records;
* :mod:`repro.simulator` — behavioural simulators of AWS Lambda, Azure
  Functions, Google Cloud Functions and an IaaS VM baseline;
* :mod:`repro.experiments` — the Perf-Cost, Invoc-Overhead, Eviction-Model
  and characterization experiments;
* :mod:`repro.models` — the analytical models (container eviction, payload
  latency, cold-start overhead, break-even);
* :mod:`repro.stats`, :mod:`repro.metrics`, :mod:`repro.reporting` — the
  measurement and reporting methodology;
* :mod:`repro.workload` — arrival processes, workload traces and the
  event-queue engine replaying them on the simulated platforms;
* :mod:`repro.workflows` — DAG function compositions (chains,
  fan-out/fan-in, maps, branches) joined by async trigger edges, with
  end-to-end latency/cost accounting and critical-path analysis.

Quickstart::

    from repro import Provider, SimulationConfig, create_platform, deploy_benchmark

    platform = create_platform(Provider.AWS, SimulationConfig(seed=1))
    fname = deploy_benchmark(platform, "thumbnailer", memory_mb=1024)
    record = platform.invoke(fname, payload={})
    print(record.client_time_s, record.cost.total)
"""

from .config import (
    DYNAMIC_MEMORY,
    ExperimentConfig,
    FunctionConfig,
    Language,
    Provider,
    SimulationConfig,
    StartType,
    TriggerType,
)
from .benchmarks import (
    Benchmark,
    BenchmarkContext,
    InputSize,
    WorkProfile,
    default_registry,
    get_benchmark,
    list_benchmarks,
)
from .experiments.base import deploy_benchmark
from .faas import CodePackage, FaaSPlatform, InvocationRecord, billing_model_for, limits_for
from .simulator import (
    AWSLambdaSimulator,
    AzureFunctionsSimulator,
    GoogleCloudFunctionsSimulator,
    IaaSPlatform,
    create_platform,
)
from .workload import (
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    Scenario,
    WorkloadResult,
    WorkloadTrace,
)
from .workflows import (
    WorkflowArrival,
    WorkflowReplayResult,
    WorkflowResult,
    WorkflowSpec,
    WorkflowStage,
    standard_workflow,
    synthesize_workflow_arrivals,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DYNAMIC_MEMORY",
    "ExperimentConfig",
    "FunctionConfig",
    "Language",
    "Provider",
    "SimulationConfig",
    "StartType",
    "TriggerType",
    "Benchmark",
    "BenchmarkContext",
    "InputSize",
    "WorkProfile",
    "default_registry",
    "get_benchmark",
    "list_benchmarks",
    "deploy_benchmark",
    "CodePackage",
    "FaaSPlatform",
    "InvocationRecord",
    "billing_model_for",
    "limits_for",
    "AWSLambdaSimulator",
    "AzureFunctionsSimulator",
    "GoogleCloudFunctionsSimulator",
    "IaaSPlatform",
    "create_platform",
    "BurstyArrivals",
    "ConstantRateArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "Scenario",
    "WorkloadResult",
    "WorkloadTrace",
    "WorkflowArrival",
    "WorkflowReplayResult",
    "WorkflowResult",
    "WorkflowSpec",
    "WorkflowStage",
    "standard_workflow",
    "synthesize_workflow_arrivals",
]
