"""Synthetic multi-tenant populations as lazy, picklable scenario recipes.

A :class:`PopulationSpec` is a pure parameter set — no arrays, no request
objects — describing a population of ``n_functions`` serverless functions
owned by ``n_tenants`` tenants:

* **popularity** is Zipf-distributed: function ``i`` carries mean rate
  ``aggregate_rate_per_s * (i+1)^-zipf_alpha / H`` (``H`` normalises the
  weights), so a handful of functions dominate traffic and a long tail is
  nearly idle — the shape production FaaS schedulers see;
* **diurnal shape**: every tenant has a phase offset into a shared
  sinusoidal day/night cycle, so tenants peak at different times;
* **correlated bursts**: the population shares ``burst_epochs`` burst
  windows; each tenant participates in each epoch with probability
  ``burst_participation``, and a participating tenant's functions run at
  ``burst_multiplier``× their instantaneous rate inside the window — many
  tenants spiking *together*, the correlated-overload case;
* **app profiles**: each function is assigned an
  :class:`~repro.population.profiles.AppProfile` from the catalog
  (benchmark kernel, memory envelope, payload envelope, trigger).

Everything derived is a pure function of ``(spec, seed)``: the structural
assignment (tenants, profiles, memory, payload sizes, phases, burst
membership) is computed vectorized from named ``(seed, "pop-structure", …)``
streams, and function ``i``'s arrival offsets come from its own
``derive_generator(seed, "pop", fname)`` stream — never from how many other
functions exist or which shard synthesizes them.  That is the same
derivation contract the simulator's per-function streams follow
(:mod:`repro.utils.rng`), and it is what makes sharded population replay
bit-identical to serial replay while the parent process never materialises
a single request.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..utils.rng import derive_generator
from ..workload.arrivals import ArrivalProcess
from ..workload.scenario import FunctionTraffic, Scenario
from .profiles import SEBS_PROFILES, AppProfile


@dataclass(frozen=True)
class FunctionRecipe:
    """Everything needed to deploy and drive one population member.

    Attributes
    ----------
    function_name:
        Deployed function name (also the arrival-stream derivation key).
    tenant:
        Name of the owning tenant.
    profile:
        The member's :class:`~repro.population.profiles.AppProfile`.
    memory_mb:
        Concrete memory size (MB) drawn from the profile's envelope.
    payload_bytes:
        Concrete request payload size (bytes) drawn from the profile's
        envelope.
    payload:
        Constant request payload mapping (shared across invocations).
    trigger:
        Request trigger type.
    """

    function_name: str
    tenant: str
    profile: AppProfile
    memory_mb: int
    payload_bytes: int
    payload: Mapping[str, Any]
    trigger: TriggerType


class _Structure:
    """Vectorized per-function structural assignment of one ``(spec, seed)``.

    Holds plain numpy arrays indexed by function: Zipf ``rates``,
    ``tenant`` ids, ``profile`` indices, ``memory_mb``, ``payload_bytes``;
    per-tenant ``phases``; and the shared burst schedule (``burst_starts``
    plus the per-tenant × per-epoch ``participation`` matrix).  Never
    pickled — workers recompute it (cheap, vectorized) from the spec.
    """

    __slots__ = (
        "rates", "tenant", "profile", "memory_mb", "payload_bytes",
        "phases", "burst_starts", "participation",
    )

    def __init__(self, spec: "PopulationSpec", seed: int) -> None:
        n = spec.n_functions
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** -spec.zipf_alpha
        self.rates = spec.aggregate_rate_per_s * weights / weights.sum()
        self.tenant = derive_generator(seed, "pop-structure", "tenant").integers(
            0, spec.tenants, size=n
        )
        mix = np.array([profile.mix_weight for profile in spec.profiles], dtype=float)
        boundaries = np.cumsum(mix / mix.sum())[:-1]
        self.profile = np.searchsorted(
            boundaries, derive_generator(seed, "pop-structure", "profile").random(n)
        )
        memory_draw = derive_generator(seed, "pop-structure", "memory").random(n)
        self.memory_mb = np.zeros(n, dtype=np.int64)
        for index, profile in enumerate(spec.profiles):
            mask = self.profile == index
            choices = np.asarray(profile.memory_mb_choices, dtype=np.int64)
            self.memory_mb[mask] = choices[
                np.minimum((memory_draw[mask] * len(choices)).astype(np.int64), len(choices) - 1)
            ]
        payload_draw = derive_generator(seed, "pop-structure", "payload").random(n)
        low = np.array([p.payload_bytes_range[0] for p in spec.profiles], dtype=float)
        high = np.array([p.payload_bytes_range[1] for p in spec.profiles], dtype=float)
        span = high[self.profile] - low[self.profile] + 1.0
        self.payload_bytes = (low[self.profile] + np.floor(payload_draw * span)).astype(np.int64)
        self.phases = (
            derive_generator(seed, "pop-structure", "phase").random(spec.tenants)
            * spec.period_s
        )
        epoch_rng = derive_generator(seed, "pop-structure", "burst-epochs")
        self.burst_starts = np.sort(
            epoch_rng.random(spec.burst_epochs)
            * max(0.0, spec.duration_s - spec.burst_window_resolved_s)
        )
        self.participation = (
            derive_generator(seed, "pop-structure", "burst-participation").random(
                (spec.tenants, spec.burst_epochs)
            )
            < spec.burst_participation
        )


@functools.lru_cache(maxsize=4)
def _structure(spec: "PopulationSpec", seed: int) -> _Structure:
    return _Structure(spec, seed)


@dataclass(frozen=True)
class PopulationSpec:
    """Parameter set of a synthetic multi-tenant population (picklable).

    Attributes
    ----------
    n_functions:
        Number of functions in the population.
    duration_s:
        Replay horizon in seconds; arrivals land in ``[0, duration_s)``.
    aggregate_rate_per_s:
        Expected population-wide arrival rate (invocations per second),
        split across functions by the Zipf weights.
    n_tenants:
        Number of tenants; ``None`` (default) derives
        ``max(1, n_functions // 8)``.
    zipf_alpha:
        Zipf popularity exponent (default 1.1); larger values concentrate
        more traffic on fewer functions.
    diurnal_amplitude:
        Day/night swing of the sinusoidal rate in ``[0, 1]`` (default 0.6);
        0 disables the diurnal shape.
    diurnal_period_s:
        Length of one diurnal cycle in seconds; ``None`` (default)
        compresses one full cycle into ``duration_s``.
    burst_epochs:
        Number of shared burst windows in the horizon (default 4; 0
        disables bursts).
    burst_window_s:
        Width of each burst window in seconds; ``None`` (default) derives
        ``duration_s / 50``.
    burst_multiplier:
        Rate multiplier a participating tenant's functions see inside a
        burst window (default 8.0).
    burst_participation:
        Probability, per tenant per epoch, of joining the burst
        (default 0.05).
    profiles:
        App-profile catalog functions are assigned from (default
        :data:`~repro.population.profiles.SEBS_PROFILES`).
    name:
        Population label, used in function names and the scenario bridge
        (default ``"population"``).
    """

    n_functions: int
    duration_s: float
    aggregate_rate_per_s: float
    n_tenants: int | None = None
    zipf_alpha: float = 1.1
    diurnal_amplitude: float = 0.6
    diurnal_period_s: float | None = None
    burst_epochs: int = 4
    burst_window_s: float | None = None
    burst_multiplier: float = 8.0
    burst_participation: float = 0.05
    profiles: tuple[AppProfile, ...] = SEBS_PROFILES
    name: str = "population"

    def __post_init__(self) -> None:
        """Validate all envelopes and derive-able defaults."""
        if self.n_functions < 1:
            raise ConfigurationError("a population needs at least one function")
        if self.duration_s <= 0:
            raise ConfigurationError("population duration must be positive")
        if self.aggregate_rate_per_s <= 0:
            raise ConfigurationError("aggregate arrival rate must be positive")
        if self.n_tenants is not None and self.n_tenants < 1:
            raise ConfigurationError("a population needs at least one tenant")
        if self.zipf_alpha < 0:
            raise ConfigurationError("zipf_alpha must be non-negative")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ConfigurationError("diurnal amplitude must lie in [0, 1]")
        if self.diurnal_period_s is not None and self.diurnal_period_s <= 0:
            raise ConfigurationError("diurnal period must be positive")
        if self.burst_epochs < 0:
            raise ConfigurationError("burst_epochs must be non-negative")
        if self.burst_window_s is not None and self.burst_window_s <= 0:
            raise ConfigurationError("burst window must be positive")
        if self.burst_multiplier < 1.0:
            raise ConfigurationError("burst multiplier must be at least 1")
        if not 0.0 <= self.burst_participation <= 1.0:
            raise ConfigurationError("burst participation must lie in [0, 1]")
        if not self.profiles:
            raise ConfigurationError("a population needs at least one app profile")

    # ------------------------------------------------------------ derived
    @property
    def tenants(self) -> int:
        """Resolved tenant count (defaults to one tenant per 8 functions)."""
        return self.n_tenants if self.n_tenants is not None else max(1, self.n_functions // 8)

    @property
    def period_s(self) -> float:
        """Resolved diurnal period (defaults to one cycle per horizon)."""
        return self.diurnal_period_s if self.diurnal_period_s is not None else self.duration_s

    @property
    def burst_window_resolved_s(self) -> float:
        """Resolved burst window width (defaults to ``duration_s / 50``)."""
        return self.burst_window_s if self.burst_window_s is not None else self.duration_s / 50.0

    def function_name(self, index: int) -> str:
        """Deployed name of member ``index`` (the stream derivation key)."""
        return f"{self.name}-{index:07d}"

    def tenant_name(self, tenant_index: int) -> str:
        """Display name of tenant ``tenant_index``."""
        return f"tenant-{tenant_index:06d}"

    def expected_counts(self) -> np.ndarray:
        """Per-function expected invocation counts (shard-planner weights).

        The Zipf mean rates times the horizon; burst uplift is ignored (it
        shifts balance, never correctness, exactly like the estimates of
        :meth:`repro.workload.arrivals.ArrivalProcess.expected_invocations`).
        """
        ranks = np.arange(1, self.n_functions + 1, dtype=float)
        weights = ranks ** -self.zipf_alpha
        return self.aggregate_rate_per_s * self.duration_s * weights / weights.sum()

    def tenant_of(self, seed: int) -> np.ndarray:
        """Per-function tenant indices under ``seed`` (vectorized)."""
        return _structure(self, seed).tenant

    # ------------------------------------------------------------- recipes
    def recipe(self, index: int, seed: int) -> FunctionRecipe:
        """The deployment + traffic recipe of member ``index``."""
        structure = _structure(self, seed)
        profile = self.profiles[int(structure.profile[index])]
        return FunctionRecipe(
            function_name=self.function_name(index),
            tenant=self.tenant_name(int(structure.tenant[index])),
            profile=profile,
            memory_mb=int(structure.memory_mb[index]),
            payload_bytes=int(structure.payload_bytes[index]),
            payload=profile.payload,
            trigger=profile.trigger,
        )

    def arrivals(self, index: int, seed: int) -> np.ndarray:
        """Sorted arrival offsets of member ``index`` in ``[0, duration_s)``.

        A non-homogeneous Poisson process sampled by vectorized thinning
        from ``derive_generator(seed, "pop", fname)``.  The draw sequence
        is fixed — one Poisson count, one uniform block for candidate
        times, one uniform block for acceptance — so the offsets depend
        only on ``(spec, seed, index)``, never on sharding or synthesis
        order.
        """
        structure = _structure(self, seed)
        rng = derive_generator(seed, "pop", self.function_name(index))
        rate = float(structure.rates[index])
        tenant = int(structure.tenant[index])
        participates = structure.participation[tenant]
        bursty = bool(participates.any())
        peak = rate * (1.0 + self.diurnal_amplitude)
        if bursty:
            peak *= self.burst_multiplier
        count = int(rng.poisson(peak * self.duration_s))
        if count == 0:
            return np.empty(0, dtype=float)
        times = np.sort(rng.random(count) * self.duration_s)
        accept = rng.random(count) * peak
        cycle = np.sin(
            2.0 * np.pi * (times + structure.phases[tenant]) / self.period_s
        )
        rate_t = rate * (1.0 + self.diurnal_amplitude * cycle)
        if bursty:
            in_burst = np.zeros(count, dtype=bool)
            window = self.burst_window_resolved_s
            for epoch, start in enumerate(structure.burst_starts):
                if participates[epoch]:
                    in_burst |= (times >= start) & (times < start + window)
            rate_t = np.where(in_burst, rate_t * self.burst_multiplier, rate_t)
        return times[accept <= rate_t]

    def traffic(self, index: int, seed: int) -> FunctionTraffic:
        """Member ``index`` as a scenario traffic source."""
        recipe = self.recipe(index, seed)
        return FunctionTraffic(
            function_name=recipe.function_name,
            process=PopulationArrivals(self, seed, index),
            payload=recipe.payload,
            payload_bytes=recipe.payload_bytes,
            trigger=recipe.trigger,
        )

    def scenario(self, seed: int, limit: int | None = None) -> Scenario:
        """Bridge the population into a :class:`~repro.workload.scenario.Scenario`.

        The returned scenario's per-source arrivals are **pinned** to the
        population streams (see :class:`PopulationArrivals`), so
        ``platform.run_workload(spec.scenario(seed), keep_records=False)``
        replays the exact invocations :func:`~repro.population.replay
        .replay_population` replays — the equivalence the test suite pins.
        ``limit`` truncates to the first ``limit`` members (the scenario
        path materialises per-source traces, so it suits small
        populations; the dedicated replay path scales to millions).
        """
        members = range(self.n_functions if limit is None else min(limit, self.n_functions))
        return Scenario(
            name=self.name,
            duration_s=self.duration_s,
            traffic=tuple(self.traffic(index, seed) for index in members),
        )


class PopulationArrivals(ArrivalProcess):
    """Arrival process of one population member, pinned to its derived stream.

    Unlike the classic processes in :mod:`repro.workload.arrivals`, this
    process **ignores the caller-supplied generator**: its offsets always
    come from the member's own ``(seed, "pop", fname)`` stream via
    :meth:`PopulationSpec.arrivals`.  That pinning is what lets the
    scenario bridge and the dedicated population replay produce identical
    traffic — whichever machinery asks for the arrivals, the same stream
    answers.
    """

    def __init__(self, population, seed: int, index: int):
        """Bind the process to ``population`` member ``index`` under ``seed``."""
        self.population = population
        self.seed = int(seed)
        self.index = int(index)

    @property
    def name(self) -> str:
        """Identifier naming the member this process drives."""
        return f"population[{self.population.function_name(self.index)}]"

    def expected_invocations(self, duration_s: float) -> float:
        """Planner weight: the member's expected count over the horizon."""
        self._check_duration(duration_s)
        return float(self.population.expected_counts()[self.index])

    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        """Return the member's pinned arrival offsets (``rng`` is unused)."""
        self._check_duration(duration_s)
        return self.population.arrivals(self.index, self.seed)

    def _check_duration(self, duration_s: float) -> None:
        if float(duration_s) != float(self.population.duration_s):
            raise ConfigurationError(
                "population arrivals are pinned to the population horizon "
                f"({self.population.duration_s}s); cannot generate for {duration_s}s"
            )
