"""Million-tenant workload populations and production-trace ingestion.

The paper's experiments drive a handful of hand-tuned benchmark deployments;
production FaaS platforms schedule millions of tenants whose functions have
heavy-tailed popularity, diurnal traffic and correlated bursts.  This package
closes that gap with two load sources that share one **lazy recipe**
abstraction:

* :class:`PopulationSpec` — a synthetic multi-tenant population: Zipf
  popularity over an app-profile catalog shaped like the SeBS suite,
  per-tenant diurnal phase offsets and correlated burst epochs.  Nothing is
  materialised up front: every function's arrivals derive from its own
  ``(seed, "pop", fname)`` stream, so any subset replays bit-identically.
* :class:`TraceIngest` — an adapter for the Azure Functions
  invocation-per-minute CSV trace format, mapping rows onto the same recipe
  abstraction (:class:`IngestedPopulation`).

Both plug into the existing machinery three ways: ``population.scenario(seed)``
bridges into :class:`repro.workload.scenario.Scenario`,
:meth:`repro.parallel.plan.ShardPlanner.plan_population` partitions members
across workers, and :func:`replay_population` runs the sharded streaming
replay through the columnar hot path with per-tenant cost attribution.
"""

from .profiles import SEBS_PROFILES, AppProfile
from .spec import FunctionRecipe, PopulationArrivals, PopulationSpec
from .ingest import IngestedPopulation, TraceIngest
from .replay import (
    PopulationReplayResult,
    PopulationSnapshot,
    TenantSpend,
    deploy_population,
    replay_population,
    tenant_attribution,
)

__all__ = [
    "AppProfile",
    "SEBS_PROFILES",
    "PopulationSpec",
    "PopulationArrivals",
    "FunctionRecipe",
    "TraceIngest",
    "IngestedPopulation",
    "PopulationSnapshot",
    "PopulationReplayResult",
    "TenantSpend",
    "deploy_population",
    "replay_population",
    "tenant_attribution",
]
