"""Production-trace ingestion: Azure Functions invocation-per-minute CSVs.

The Azure Functions 2019 trace (Shahrad et al., ATC'20 — the dataset the
serverless community characterises production load with) ships per-function
invocation counts as wide CSVs: one row per function with hashed owner /
app / function ids, a trigger column, and one column per minute of the day
("1" … "1440") holding that minute's invocation count.  :class:`TraceIngest`
parses that format — any number of minute columns, so trimmed fixtures work
too — into an :class:`IngestedPopulation` that satisfies the same lazy
recipe protocol as :class:`~repro.population.spec.PopulationSpec`:

* tenants are the ``HashApp`` ids (an app groups the functions deployed
  together, which is the Azure billing/ownership unit);
* each function's arrivals are reconstructed from its count row by placing
  ``count`` invocations uniformly inside each minute, drawn from the
  function's own ``(seed, "pop", fname)`` stream — shard-independent like
  every other stream in the simulator;
* app profiles from the catalog are assigned round-robin (the trace has no
  resource information), with deterministic memory / payload choices so
  ingest needs no extra randomness.

Because the adapter only keeps the count matrix (O(functions × minutes)),
replaying a trace slice never materialises requests in the parent process —
shards synthesize their own arrivals exactly as with synthetic populations.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..utils.rng import derive_generator
from ..workload.scenario import FunctionTraffic, Scenario
from .profiles import SEBS_PROFILES, AppProfile
from .spec import FunctionRecipe, PopulationArrivals

#: Azure trace ``Trigger`` column values mapped onto simulator trigger types;
#: unknown values fall back to HTTP.
TRIGGER_MAP: Mapping[str, TriggerType] = {
    "http": TriggerType.HTTP,
    "queue": TriggerType.QUEUE,
    "timer": TriggerType.TIMER,
    "storage": TriggerType.STORAGE,
    "blob": TriggerType.STORAGE,
    "event": TriggerType.QUEUE,
    "orchestration": TriggerType.QUEUE,
    "others": TriggerType.HTTP,
}


@dataclass(frozen=True, eq=False)
class IngestedPopulation:
    """A trace-derived population satisfying the lazy recipe protocol.

    Attributes
    ----------
    name:
        Population label (defaults to the source file stem).
    function_names:
        Deployed function name per member, in row order.
    tenant_index:
        Per-member tenant index into ``tenant_names``.
    tenant_names:
        Distinct tenant (``HashApp``) labels, first-seen order.
    triggers:
        Per-member trigger type mapped from the trace's ``Trigger`` column.
    counts:
        ``(n_functions, n_minutes)`` invocation-count matrix.
    profiles:
        Catalog the members' app profiles are assigned from (round-robin).
    """

    name: str
    function_names: tuple[str, ...]
    tenant_index: tuple[int, ...]
    tenant_names: tuple[str, ...]
    triggers: tuple[TriggerType, ...]
    counts: np.ndarray = field(repr=False)
    profiles: tuple[AppProfile, ...] = SEBS_PROFILES

    def __post_init__(self) -> None:
        """Validate row/column consistency of the ingested matrix."""
        if not self.function_names:
            raise ConfigurationError("ingested population has no functions")
        if self.counts.shape[0] != len(self.function_names):
            raise ConfigurationError("count matrix rows must match function count")
        if self.counts.shape[1] < 1:
            raise ConfigurationError("ingested trace needs at least one minute column")
        if len(self.tenant_index) != len(self.function_names):
            raise ConfigurationError("tenant assignment must match function count")
        if not self.profiles:
            raise ConfigurationError("ingested population needs at least one app profile")

    # -------------------------------------------------- protocol properties
    @property
    def n_functions(self) -> int:
        """Number of functions (trace rows)."""
        return len(self.function_names)

    @property
    def duration_s(self) -> float:
        """Replay horizon: 60 s per minute column."""
        return 60.0 * self.counts.shape[1]

    def function_name(self, index: int) -> str:
        """Deployed name of member ``index`` (the stream derivation key)."""
        return self.function_names[index]

    def tenant_name(self, tenant_index: int) -> str:
        """Display name of tenant ``tenant_index``."""
        return self.tenant_names[tenant_index]

    def expected_counts(self) -> np.ndarray:
        """Per-function total invocation counts (exact, from the trace)."""
        return self.counts.sum(axis=1).astype(float)

    def tenant_of(self, seed: int) -> np.ndarray:
        """Per-function tenant indices (trace-given; ``seed`` is unused)."""
        return np.asarray(self.tenant_index, dtype=np.int64)

    # -------------------------------------------------------------- recipes
    def recipe(self, index: int, seed: int) -> FunctionRecipe:
        """The deployment + traffic recipe of member ``index``.

        The trace carries no resource data, so the profile assignment is
        deterministic: catalog round-robin by row, first memory choice,
        payload-range midpoint.
        """
        profile = self.profiles[index % len(self.profiles)]
        low, high = profile.payload_bytes_range
        return FunctionRecipe(
            function_name=self.function_names[index],
            tenant=self.tenant_names[self.tenant_index[index]],
            profile=profile,
            memory_mb=profile.memory_mb_choices[0],
            payload_bytes=(low + high) // 2,
            payload=profile.payload,
            trigger=self.triggers[index],
        )

    def arrivals(self, index: int, seed: int) -> np.ndarray:
        """Sorted arrival offsets reconstructed from member ``index``'s row.

        Each minute's ``count`` invocations are placed uniformly inside that
        minute using the member's own ``(seed, "pop", fname)`` stream — one
        uniform block in row order, so the offsets depend only on
        ``(trace row, seed)``, never on sharding.
        """
        row = self.counts[index]
        total = int(row.sum())
        if total == 0:
            return np.empty(0, dtype=float)
        rng = derive_generator(seed, "pop", self.function_names[index])
        minute_of = np.repeat(np.arange(row.shape[0], dtype=float), row)
        return np.sort(60.0 * (minute_of + rng.random(total)))

    def traffic(self, index: int, seed: int) -> FunctionTraffic:
        """Member ``index`` as a scenario traffic source."""
        recipe = self.recipe(index, seed)
        return FunctionTraffic(
            function_name=recipe.function_name,
            process=PopulationArrivals(self, seed, index),
            payload=recipe.payload,
            payload_bytes=recipe.payload_bytes,
            trigger=recipe.trigger,
        )

    def scenario(self, seed: int, limit: int | None = None) -> Scenario:
        """Bridge the ingested trace into a scenario (see ``PopulationSpec``)."""
        members = range(self.n_functions if limit is None else min(limit, self.n_functions))
        return Scenario(
            name=self.name,
            duration_s=self.duration_s,
            traffic=tuple(self.traffic(index, seed) for index in members),
        )


class TraceIngest:
    """Parser for Azure Functions invocation-per-minute CSV traces."""

    #: Identity columns expected before the minute columns.
    ID_COLUMNS = ("HashOwner", "HashApp", "HashFunction")

    @staticmethod
    def load(
        path: str | Path,
        *,
        name: str | None = None,
        limit: int | None = None,
        profiles: tuple[AppProfile, ...] = SEBS_PROFILES,
    ) -> IngestedPopulation:
        """Parse ``path`` into an :class:`IngestedPopulation`.

        Parameters
        ----------
        path:
            CSV file in the Azure invocation-per-minute format (header with
            ``HashOwner, HashApp, HashFunction, Trigger`` followed by
            numeric minute columns; any number of minute columns works).
        name:
            Population label; defaults to the file stem.
        limit:
            Keep only the first ``limit`` rows (for slicing huge traces).
        profiles:
            App-profile catalog to assign round-robin.
        """
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise ConfigurationError(f"trace file {path} is empty") from None
            columns = {column: i for i, column in enumerate(header)}
            for column in TraceIngest.ID_COLUMNS:
                if column not in columns:
                    raise ConfigurationError(
                        f"trace file {path} is missing column {column!r}; "
                        "expected the Azure invocation-per-minute format"
                    )
            trigger_col = columns.get("Trigger")
            minute_cols = [i for i, column in enumerate(header) if column.isdigit()]
            if not minute_cols:
                raise ConfigurationError(
                    f"trace file {path} has no numeric minute columns"
                )
            minute_cols.sort(key=lambda i: int(header[i]))

            function_names: list[str] = []
            tenant_index: list[int] = []
            tenant_names: list[str] = []
            tenant_of: dict[str, int] = {}
            triggers: list[TriggerType] = []
            rows: list[list[int]] = []
            for row_number, row in enumerate(reader):
                if limit is not None and len(rows) >= limit:
                    break
                if not row:
                    continue
                if len(row) < len(header):
                    raise ConfigurationError(
                        f"trace file {path} row {row_number + 2} has "
                        f"{len(row)} fields, expected {len(header)}"
                    )
                app = row[columns["HashApp"]]
                fn = row[columns["HashFunction"]]
                if app not in tenant_of:
                    tenant_of[app] = len(tenant_names)
                    tenant_names.append(f"app-{app[:12]}")
                tenant_index.append(tenant_of[app])
                function_names.append(f"az-{len(rows):05d}-{fn[:8]}")
                raw_trigger = row[trigger_col].strip().lower() if trigger_col is not None else ""
                triggers.append(TRIGGER_MAP.get(raw_trigger, TriggerType.HTTP))
                try:
                    rows.append([int(float(row[i])) for i in minute_cols])
                except ValueError as error:
                    raise ConfigurationError(
                        f"trace file {path} row {row_number + 2} has a "
                        f"non-numeric invocation count: {error}"
                    ) from None
        if not rows:
            raise ConfigurationError(f"trace file {path} has no data rows")
        return IngestedPopulation(
            name=name or path.stem,
            function_names=tuple(function_names),
            tenant_index=tuple(tenant_index),
            tenant_names=tuple(tenant_names),
            triggers=tuple(triggers),
            counts=np.asarray(rows, dtype=np.int64),
            profiles=profiles,
        )


def summarize_population(population: Any, seed: int) -> dict[str, Any]:
    """Small structural summary of a population (used by CLI and goldens)."""
    counts = population.expected_counts()
    tenants = population.tenant_of(seed)
    return {
        "name": population.name,
        "functions": int(population.n_functions),
        "tenants": int(len(np.unique(tenants))),
        "duration_s": float(population.duration_s),
        "expected_invocations": float(counts.sum()),
        "hottest_function": population.function_name(int(np.argmax(counts))),
        "hottest_share": float(counts.max() / counts.sum()) if counts.sum() else 0.0,
    }
