"""App-profile catalog: what kind of function is each population member?

A profile parameterizes one *kind* of application in a population: which
benchmark kernel it runs (and therefore its calibrated compute/storage
work profile), its memory envelope, its request-payload envelope, its
trigger type, and how common the kind is in the population mix.  The
default catalog (:data:`SEBS_PROFILES`) is grown toward the SeBS suite
shape of paper Table 3: web apps dominate the mix, multimedia and utility
processing follow, and ML inference / graph analytics form the heavy,
rarely-invoked tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..benchmarks.base import InputSize
from ..config import Language, TriggerType
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class AppProfile:
    """One application kind in a population, with its resource envelopes.

    Attributes
    ----------
    name:
        Short profile identifier (used in labels and docs).
    benchmark:
        Registered benchmark name (:mod:`repro.benchmarks.registry`) whose
        calibrated work profile the function executes.
    memory_mb_choices:
        Memory sizes (MB) a member of this profile may be deployed with;
        one is drawn per function from the population's structure stream.
        Resolved against the target provider's allowed memory settings at
        deployment time (Azure collapses to dynamic allocation).
    payload_bytes_range:
        Inclusive ``(low, high)`` bounds on the request payload size in
        bytes; one size is drawn per function.
    input_size:
        Benchmark input-size preset (:class:`repro.benchmarks.base.InputSize`).
    trigger:
        Trigger type of the profile's requests
        (:class:`repro.config.TriggerType`).
    timeout_s:
        Function timeout in seconds (default 30.0).
    mix_weight:
        Relative frequency of the profile in the population mix (default
        1.0); normalised over the catalog.
    language:
        Implementation language (default Python).
    payload_items:
        Constant request payload carried by every invocation, as sorted
        ``(key, value)`` pairs so the profile stays hashable.
    """

    name: str
    benchmark: str
    memory_mb_choices: tuple[int, ...]
    payload_bytes_range: tuple[int, int]
    input_size: InputSize = InputSize.SMALL
    trigger: TriggerType = TriggerType.HTTP
    timeout_s: float = 30.0
    mix_weight: float = 1.0
    language: Language = Language.PYTHON
    payload_items: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        """Validate the envelopes (positive sizes, ordered payload bounds)."""
        if not self.memory_mb_choices:
            raise ConfigurationError(f"profile {self.name!r} needs at least one memory size")
        if any(size < 0 for size in self.memory_mb_choices):
            raise ConfigurationError(f"profile {self.name!r} has a negative memory size")
        low, high = self.payload_bytes_range
        if low < 0 or high < low:
            raise ConfigurationError(
                f"profile {self.name!r} payload range must satisfy 0 <= low <= high"
            )
        if self.timeout_s <= 0:
            raise ConfigurationError(f"profile {self.name!r} timeout must be positive")
        if self.mix_weight <= 0:
            raise ConfigurationError(f"profile {self.name!r} mix weight must be positive")

    @property
    def payload(self) -> Mapping[str, Any]:
        """The constant request payload as a plain mapping."""
        return dict(self.payload_items)


#: Default population catalog, shaped like the SeBS suite (Table 3): web
#: apps are the bulk of the tenant mix, media/utility processing follows,
#: ML inference and graph analytics are the heavy tail.  Mix weights are
#: relative frequencies, not traffic shares — popularity comes from the
#: population's Zipf rate assignment, independent of the profile draw.
SEBS_PROFILES: tuple[AppProfile, ...] = (
    AppProfile(
        name="dynamic-html",
        benchmark="dynamic-html",
        memory_mb_choices=(128, 256),
        payload_bytes_range=(200, 1200),
        trigger=TriggerType.HTTP,
        timeout_s=10.0,
        mix_weight=30.0,
        payload_items=(("username", "tenant"),),
    ),
    AppProfile(
        name="uploader",
        benchmark="uploader",
        memory_mb_choices=(128, 256),
        payload_bytes_range=(256, 4096),
        trigger=TriggerType.HTTP,
        timeout_s=30.0,
        mix_weight=15.0,
    ),
    AppProfile(
        name="thumbnailer",
        benchmark="thumbnailer",
        memory_mb_choices=(256, 512),
        payload_bytes_range=(512, 2048),
        trigger=TriggerType.STORAGE,
        timeout_s=30.0,
        mix_weight=12.0,
    ),
    AppProfile(
        name="compression",
        benchmark="compression",
        memory_mb_choices=(512, 1024),
        payload_bytes_range=(256, 1024),
        trigger=TriggerType.QUEUE,
        timeout_s=60.0,
        mix_weight=8.0,
    ),
    AppProfile(
        name="image-recognition",
        benchmark="image-recognition",
        memory_mb_choices=(1024, 1536),
        payload_bytes_range=(512, 2048),
        trigger=TriggerType.HTTP,
        timeout_s=60.0,
        mix_weight=6.0,
    ),
    AppProfile(
        name="graph-bfs",
        benchmark="graph-bfs",
        memory_mb_choices=(512, 1024),
        payload_bytes_range=(128, 512),
        trigger=TriggerType.QUEUE,
        timeout_s=60.0,
        mix_weight=4.0,
    ),
    AppProfile(
        name="graph-pagerank",
        benchmark="graph-pagerank",
        memory_mb_choices=(1024, 2048),
        payload_bytes_range=(128, 512),
        trigger=TriggerType.TIMER,
        timeout_s=120.0,
        mix_weight=2.0,
    ),
)
