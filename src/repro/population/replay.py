"""Sharded streaming replay of populations, with per-tenant cost attribution.

The scenario bridge (``population.scenario(seed)``) works for small
populations, but it builds one :class:`~repro.workload.scenario.FunctionTraffic`
object per member in the parent — a million-function population would spend
minutes (and gigabytes) before the first invocation replays.  This module is
the scale path:

* :class:`PopulationSnapshot` captures an **empty** platform recipe (class,
  simulation config, clock, constructor kwargs) — deployment happens inside
  each worker, for that worker's members only;
* :func:`replay_population` plans member-disjoint shards
  (:meth:`~repro.parallel.plan.ShardPlanner.plan_population`), runs them on
  the existing shard executor (sequential or process backend, optional
  supervision), and merges the streaming accumulators exactly like a
  sharded trace replay;
* each worker synthesizes its members' arrivals from their own
  ``(seed, "pop", fname)`` streams, builds the merged stream with one
  stable ``argsort`` (reproducing the serial heap-merge tie order:
  lower member index first), and folds it through the columnar hot path
  when the platform enables it — the parent process stays O(shards).

Parent-side memory is O(functions) only where it must be: the shard plan
(one int per member) and the merged per-function accumulators.  No request
is ever materialised outside a worker.

Cost attribution folds the merged per-function summaries onto the
population's tenant assignment (:func:`tenant_attribution`), yielding the
top-k tenants by spend — the multi-tenant question (who is costing what?)
the flat per-function summaries cannot answer.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..config import DYNAMIC_MEMORY, DEFAULT_REGIONS, FunctionConfig, SimulationConfig
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRequest
from ..parallel.executor import _execute, _resolve_backend
from ..parallel.merge import TraceShardOutcome, merge_trace_outcomes
from ..parallel.plan import PopulationShard, ShardPlanner
from ..parallel.supervisor import SupervisorConfig
from ..utils.clock import VirtualClock
from ..workload.engine import WorkloadEngine, WorkloadResult, _ReplayAccumulator


@dataclass(frozen=True)
class TenantSpend:
    """One tenant's share of a population replay.

    Attributes
    ----------
    tenant:
        Tenant display name.
    cost_usd:
        Total billed cost (USD) across the tenant's functions.
    invocations:
        Total invocation count across the tenant's functions.
    """

    tenant: str
    cost_usd: float
    invocations: int

    def to_row(self) -> dict[str, Any]:
        """The spend as a flat report row."""
        return {
            "tenant": self.tenant,
            "cost_usd": round(self.cost_usd, 8),
            "invocations": self.invocations,
        }


@dataclass(frozen=True)
class PopulationSnapshot:
    """A picklable recipe that rebuilds an identical **empty** platform.

    Unlike :class:`~repro.parallel.snapshot.PlatformSnapshot`, no function
    deployments are captured: population workers deploy their own members
    from the population recipe, so capturing requires a platform with *no*
    functions at all — a deployed parent would collide with (or silently
    diverge from) the worker-side deployments.
    """

    platform_class: type
    simulation: SimulationConfig
    clock_start: float
    init_kwargs: tuple[tuple[str, object], ...] = ()

    @classmethod
    def capture(cls, platform) -> "PopulationSnapshot":
        """Capture ``platform``'s rebuild recipe (must be empty and fresh)."""
        if platform.execute_kernels:
            raise ConfigurationError(
                "population replay does not support execute_kernels=True: kernels "
                "share one object store, which cannot be partitioned per shard"
            )
        deployed = platform.functions()
        if deployed:
            raise ConfigurationError(
                "population replay deploys functions inside each worker; start "
                f"from an empty platform (found {len(deployed)} deployed "
                "functions)"
            )
        return cls(
            platform_class=type(platform),
            simulation=platform.simulation,
            clock_start=platform.clock.now(),
            init_kwargs=tuple(sorted(platform._snapshot_init_kwargs().items())),
        )

    def build(self):
        """Instantiate an empty platform positioned at the captured clock."""
        return self.platform_class(
            simulation=self.simulation,
            clock=VirtualClock(self.clock_start),
            **dict(self.init_kwargs),
        )


def _resolve_memory(limits, requested_mb: int) -> int:
    """Map a profile's memory request onto a legal provider configuration.

    Dynamic-allocation providers (Azure) collapse every request to
    ``DYNAMIC_MEMORY``; discrete-size providers (GCP) round up to the
    smallest allowed size that fits (or the largest available); range
    providers (AWS) clamp into ``[min, max]``.
    """
    if not limits.memory_static:
        return DYNAMIC_MEMORY
    if limits.allowed_memory_mb is not None:
        sizes = sorted(size for size in limits.allowed_memory_mb if size != DYNAMIC_MEMORY)
        for size in sizes:
            if size >= requested_mb:
                return size
        return sizes[-1]
    return int(min(limits.memory_max_mb, max(limits.memory_min_mb, requested_mb)))


def deploy_population(platform, population, member_indices, seed: int) -> int:
    """Deploy population members onto ``platform``; returns the count.

    Code packages are built once per distinct app profile (packaging runs
    the benchmark registry and size validation — per-function packaging of
    a million members would dominate deployment).  Each member's requested
    memory is resolved against the provider's limits via
    :func:`_resolve_memory`.
    """
    packages: dict[tuple[str, Any], Any] = {}
    region = DEFAULT_REGIONS[platform.provider]
    deployed = 0
    for index in member_indices:
        recipe = population.recipe(int(index), seed)
        profile = recipe.profile
        key = (profile.benchmark, profile.language)
        package = packages.get(key)
        if package is None:
            package = packages[key] = platform.package_code(profile.benchmark, profile.language)
        config = FunctionConfig(
            memory_mb=_resolve_memory(platform.limits, recipe.memory_mb),
            timeout_s=min(profile.timeout_s, platform.limits.time_limit_s),
            language=profile.language,
            region=region,
        )
        platform.create_function(recipe.function_name, package, config)
        platform.set_input_size(recipe.function_name, profile.input_size)
        deployed += 1
    return deployed


def _shard_request_stream(
    population, seed: int, active: list[int], arrivals: list[np.ndarray]
) -> Iterator[InvocationRequest]:
    """Lazily yield the shard's merged, time-sorted request stream.

    Per-member arrival arrays are concatenated in ascending member order
    and merged with one stable ``argsort`` — exactly the tie order of the
    serial scenario path's stable heap merge (equal offsets resolve to the
    lower source index, and each member's offsets are already sorted).
    """
    counts = np.array([offsets.size for offsets in arrivals], dtype=np.int64)
    offsets = np.concatenate(arrivals)
    member_of = np.repeat(np.arange(len(active), dtype=np.int64), counts)
    order = np.argsort(offsets, kind="stable")
    offsets = offsets[order]
    member_of = member_of[order]
    recipes = [population.recipe(index, seed) for index in active]
    names = [recipe.function_name for recipe in recipes]
    payloads = [dict(recipe.payload) for recipe in recipes]
    payload_bytes = [int(recipe.payload_bytes) for recipe in recipes]
    triggers = [recipe.trigger for recipe in recipes]
    for j in range(offsets.shape[0]):
        member = int(member_of[j])
        yield InvocationRequest(
            function_name=names[member],
            payload=payloads[member],
            payload_bytes=payload_bytes[member],
            trigger=triggers[member],
            submitted_at=float(offsets[j]),
        )


def _replay_population_shard(
    snapshot: PopulationSnapshot, shard: PopulationShard, keep_records: bool
) -> TraceShardOutcome:
    """Worker entry point: deploy the shard's members, replay their traffic.

    Streaming-only: a million-function record list defeats the point of
    the lazy recipe path, and the scenario bridge covers record-mode needs
    for small populations.
    """
    if keep_records:
        raise ConfigurationError(
            "population replay is streaming-only (keep_records=False); for "
            "record mode, bridge a small population via population.scenario()"
        )
    population = shard.population
    platform = snapshot.build()
    active: list[int] = []
    arrivals: list[np.ndarray] = []
    for index in shard.member_indices:
        offsets = population.arrivals(int(index), shard.seed)
        if offsets.size:
            active.append(int(index))
            arrivals.append(offsets)
    # Members with zero arrivals are never deployed: deployment is O(active),
    # and the name-keyed stream derivation guarantees their absence changes
    # nothing another member draws.
    deploy_population(platform, population, active, shard.seed)
    engine = WorkloadEngine(platform)
    accumulator = _ReplayAccumulator()
    if not active:
        return TraceShardOutcome(
            shard_index=shard.index,
            records=None,
            accumulator=accumulator,
            peak_in_flight=0,
        )
    requests = _shard_request_stream(population, shard.seed, active, arrivals)
    columnar_ok = (
        getattr(platform, "_columnar", False)
        and not getattr(platform, "_controlled_replay", False)
        and not platform.execute_kernels
    )
    if columnar_ok:
        from ..columnar.engine import replay_fold

        replay_fold(engine, requests, accumulator)
    else:
        for record in engine.stream(requests):
            accumulator.add(record)
    return TraceShardOutcome(
        shard_index=shard.index,
        records=None,
        accumulator=accumulator,
        peak_in_flight=engine.last_peak_in_flight,
    )


def tenant_attribution(result: WorkloadResult, population, seed: int) -> list[TenantSpend]:
    """Fold per-function replay summaries onto the tenant assignment.

    Returns every tenant with at least one invocation, ranked by
    ``(-cost, tenant name)`` — deterministic, and the fold itself runs in
    ascending function-index order so float accumulation is reproducible.
    """
    summaries = result.per_function()
    tenants = population.tenant_of(seed)
    size = int(tenants.max()) + 1 if tenants.size else 0
    cost = np.zeros(size, dtype=float)
    invocations = np.zeros(size, dtype=np.int64)
    for index in range(population.n_functions):
        summary = summaries.get(population.function_name(index))
        if summary is None:
            continue
        tenant = int(tenants[index])
        cost[tenant] += summary.total_cost_usd
        invocations[tenant] += summary.invocations
    ranked = sorted(
        np.flatnonzero(invocations > 0),
        key=lambda tenant: (-cost[tenant], population.tenant_name(int(tenant))),
    )
    return [
        TenantSpend(
            tenant=population.tenant_name(int(tenant)),
            cost_usd=float(cost[tenant]),
            invocations=int(invocations[tenant]),
        )
        for tenant in ranked
    ]


@dataclass
class PopulationReplayResult:
    """A population replay's merged result plus tenant-level attribution.

    Attributes
    ----------
    result:
        The merged streaming :class:`~repro.workload.engine.WorkloadResult`.
    population_name:
        Label of the replayed population.
    seed:
        Seed the structure and arrivals derived from.
    functions_total:
        Population size (members planned, active or not).
    functions_active:
        Members that produced at least one invocation.
    top_tenants:
        Top-k tenants by spend (k set by ``replay_population``).
    """

    result: WorkloadResult
    population_name: str
    seed: int
    functions_total: int
    functions_active: int
    top_tenants: tuple[TenantSpend, ...]

    @property
    def invocations(self) -> int:
        """Total invocations replayed."""
        return self.result.invocations

    @property
    def throughput_per_s(self) -> float:
        """Invocations simulated per wall-clock second."""
        return self.result.throughput_per_s

    @property
    def total_cost_usd(self) -> float:
        """Total billed cost (USD) across the population."""
        return self.result.total_cost_usd

    def summary_row(self) -> dict[str, Any]:
        """One aggregate row describing the population replay."""
        row = self.result.summary_row()
        row.update(
            population=self.population_name,
            functions_total=self.functions_total,
            functions_active=self.functions_active,
            top_tenants=[spend.to_row() for spend in self.top_tenants],
        )
        return row


def replay_population(
    platform,
    population,
    *,
    seed: int | None = None,
    workers: int = 1,
    backend: str | None = None,
    supervision: SupervisorConfig | None = None,
    profile: bool = False,
    top_tenants: int = 10,
) -> PopulationReplayResult:
    """Sharded streaming replay of a population with tenant attribution.

    ``platform`` must be empty and fresh — each worker deploys its own
    members (see :class:`PopulationSnapshot`).  ``seed`` defaults to the
    platform's simulation seed and drives both the population structure and
    every member's arrival stream, so the same ``(population, seed)`` pair
    replays bit-identically at any worker count: members are
    function-disjoint across shards and every stream they touch is
    name-derived, the same argument that covers sharded scenario replay.

    ``workers`` / ``backend`` / ``supervision`` / ``profile`` behave as in
    :func:`~repro.parallel.executor.run_workload_sharded`; checkpointing is
    not offered (population shards carry live population objects, which the
    plan fingerprint machinery does not cover).  ``top_tenants`` bounds the
    attribution list on the result.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    if top_tenants < 0:
        raise ConfigurationError("top_tenants must be non-negative")
    wall_start = time.perf_counter()
    profiler = None
    if profile:
        from ..observe.profile import ProfileBuilder

        profiler = ProfileBuilder()
    plan_phase = profiler.phase("plan") if profiler is not None else nullcontext()
    with plan_phase:
        backend = _resolve_backend(backend, workers)
        snapshot = PopulationSnapshot.capture(platform)
        seed = platform.simulation.seed if seed is None else int(seed)
        shards = ShardPlanner().plan_population(population, seed, workers)
    shard_phase = profiler.phase("shards") if profiler is not None else nullcontext()
    with shard_phase:
        outcomes, report = _execute(
            _replay_population_shard,
            snapshot,
            shards,
            False,
            workers,
            backend,
            supervision=supervision,
        )
    merge_phase = profiler.phase("merge") if profiler is not None else nullcontext()
    with merge_phase:
        wall_clock_s = time.perf_counter() - wall_start
        result = merge_trace_outcomes(
            platform.provider, outcomes, keep_records=False, wall_clock_s=wall_clock_s
        )
        spends = tenant_attribution(result, population, seed)
    result.supervision = report
    if profiler is not None:
        result.profile = profiler.build(supervision=report)
    return PopulationReplayResult(
        result=result,
        population_name=population.name,
        seed=seed,
        functions_total=int(population.n_functions),
        functions_active=len(result.per_function()),
        top_tenants=tuple(spends[:top_tenants]),
    )
