"""Scenarios: mixed traffic over several functions and workflows.

A :class:`Scenario` maps deployed functions to arrival processes and builds
the lazily merged trace that the engine replays.  Each traffic source's
arrivals are drawn from an independent random stream derived from the
scenario seed (see :func:`repro.utils.rng.derive_seed`), so adding traffic
for one function never perturbs another function's arrivals — the same
property the simulator's own streams have.

Beyond flat per-function traffic, a scenario can carry **workflow
traffic** (:class:`WorkflowTraffic`): arrival processes that start whole
DAG executions (:mod:`repro.workflows`) instead of single invocations.
``build_workflow_arrivals`` synthesizes the merged, time-sorted workflow
arrival stream the same way ``build_trace`` synthesizes request traffic.

:func:`standard_scenario` builds the canned single-function scenarios the
CLI exposes (``constant``, ``poisson``, ``bursty``, ``diurnal``) and the
``mixed`` scenario combining all three stochastic patterns over different
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..utils.rng import RandomStreams
from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from .trace import MergedWorkloadTrace, WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..workflows.spec import WorkflowArrival, WorkflowSpec


@dataclass(frozen=True)
class FunctionTraffic:
    """Traffic description for one function inside a scenario."""

    function_name: str
    process: ArrivalProcess
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: None = derive the request size from the JSON-encoded payload.
    payload_bytes: int | None = None
    trigger: TriggerType = TriggerType.HTTP


@dataclass(frozen=True)
class WorkflowTraffic:
    """Workflow-execution traffic inside a scenario.

    Each arrival starts one end-to-end execution of ``workflow``
    (see :mod:`repro.workflows`); the payload seeds every execution.
    """

    workflow: "WorkflowSpec"
    process: ArrivalProcess
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_bytes: int | None = None


@dataclass(frozen=True)
class Scenario:
    """A named traffic mix replayed over a fixed duration.

    ``traffic`` drives flat per-function requests; ``workflow_traffic``
    drives whole DAG executions.  A scenario needs at least one source of
    either kind.

    Attributes
    ----------
    name:
        Scenario identifier.  Part of the RNG stream derivation
        (``RandomStreams(seed).fork("workload", name)``), so two scenarios
        with different names synthesize different arrivals from the same
        seed.
    duration_s:
        Replay horizon in seconds of simulated time (must be positive).
        Every arrival process stops emitting at this bound.
    traffic:
        Flat per-function traffic sources (default none).  Each
        :class:`FunctionTraffic` pairs a deployed function name with an
        :class:`~repro.workload.arrival.ArrivalProcess` and optional
        payload.
    workflow_traffic:
        Whole-DAG traffic sources (default none).  Each
        :class:`WorkflowTraffic` pairs a
        :class:`~repro.workflows.spec.WorkflowSpec` with an arrival
        process; see :meth:`build_workflow_arrivals`.
    """

    name: str
    duration_s: float
    traffic: tuple[FunctionTraffic, ...] = ()
    workflow_traffic: tuple[WorkflowTraffic, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("scenario duration must be positive")
        if not self.traffic and not self.workflow_traffic:
            raise ConfigurationError("a scenario needs at least one traffic source")

    def functions(self) -> list[str]:
        """Sorted names of every function this scenario touches (flat + DAG)."""
        names = {traffic.function_name for traffic in self.traffic}
        for workflow_traffic in self.workflow_traffic:
            names.update(workflow_traffic.workflow.functions())
        return sorted(names)

    def build_trace(self, seed: int = 0) -> MergedWorkloadTrace:
        """Synthesize the lazily merged trace of all flat traffic sources."""
        if not self.traffic:
            raise ConfigurationError(
                f"scenario {self.name!r} has no flat function traffic; "
                "use build_workflow_arrivals for its workflow traffic"
            )
        streams = RandomStreams(seed).fork("workload", self.name)
        traces = [
            WorkloadTrace.synthesize(
                traffic.function_name,
                traffic.process,
                self.duration_s,
                rng=streams.stream("arrivals", f"{index}:{traffic.function_name}"),
                payload=traffic.payload,
                payload_bytes=traffic.payload_bytes,
                trigger=traffic.trigger,
            )
            for index, traffic in enumerate(self.traffic)
        ]
        return WorkloadTrace.merge(*traces)

    def build_workflow_arrivals(self, seed: int = 0) -> list["WorkflowArrival"]:
        """Synthesize the merged, time-sorted workflow arrival stream.

        Every workflow-traffic entry draws from its own derived random
        stream (independent of the flat traffic streams), so mixing
        workflow and request traffic never perturbs either.
        """
        from ..workflows.spec import merge_workflow_arrivals, synthesize_workflow_arrivals

        if not self.workflow_traffic:
            return []
        streams = RandomStreams(seed).fork("workload", self.name)
        groups = [
            synthesize_workflow_arrivals(
                traffic.workflow,
                traffic.process,
                self.duration_s,
                rng=streams.stream("workflow-arrivals", f"{index}:{traffic.workflow.name}"),
                payload=traffic.payload,
                payload_bytes=traffic.payload_bytes,
            )
            for index, traffic in enumerate(self.workflow_traffic)
        ]
        return merge_workflow_arrivals(*groups)


#: Names accepted by :func:`standard_scenario` (and the CLI's ``--pattern``).
STANDARD_PATTERNS = ("constant", "poisson", "bursty", "diurnal", "mixed")


def standard_scenario(
    pattern: str,
    function_names: list[str] | tuple[str, ...],
    duration_s: float = 600.0,
    rate_per_s: float = 2.0,
) -> Scenario:
    """Build one of the canned scenarios over ``function_names``.

    ``constant`` / ``poisson`` / ``bursty`` / ``diurnal`` apply the same
    arrival pattern to every function (each with its own random stream);
    ``mixed`` cycles the three stochastic patterns across the functions,
    which is the interesting multi-tenant case.  The diurnal pattern is
    compressed to one "day" per trace duration so short traces still see a
    full peak/trough cycle.
    """
    if not function_names:
        raise ConfigurationError("standard scenarios need at least one function name")
    if pattern not in STANDARD_PATTERNS:
        raise ConfigurationError(
            f"unknown traffic pattern {pattern!r}; choose from {', '.join(STANDARD_PATTERNS)}"
        )

    def make_process(kind: str) -> ArrivalProcess:
        if kind == "constant":
            return ConstantRateArrivals(rate_per_s)
        if kind == "poisson":
            return PoissonArrivals(rate_per_s)
        if kind == "bursty":
            # Bursts of 4x the mean rate, ON a quarter of the time.
            return BurstyArrivals(
                on_rate_per_s=4.0 * rate_per_s,
                mean_on_s=max(1.0, duration_s / 40.0),
                mean_off_s=max(3.0, 3.0 * duration_s / 40.0),
            )
        if kind == "diurnal":
            return DiurnalArrivals(mean_rate_per_s=rate_per_s, amplitude=0.9, period_s=duration_s)
        raise ConfigurationError(f"unknown traffic pattern {kind!r}")

    if pattern == "mixed":
        cycle = ("poisson", "bursty", "diurnal")
        traffic = tuple(
            FunctionTraffic(function_name=name, process=make_process(cycle[index % len(cycle)]))
            for index, name in enumerate(function_names)
        )
    else:
        traffic = tuple(
            FunctionTraffic(function_name=name, process=make_process(pattern))
            for name in function_names
        )
    return Scenario(name=pattern, duration_s=duration_s, traffic=traffic)
