"""Trace-driven workload generation and event-queue replay.

The workload layer supplies the "traffic" half of the reproduction: arrival
processes (:mod:`repro.workload.arrivals`), timestamped traces
(:mod:`repro.workload.trace`), multi-function scenarios
(:mod:`repro.workload.scenario`) and the min-heap event-queue engine that
replays them on a simulated platform (:mod:`repro.workload.engine`).

Typical use::

    from repro import Provider, SimulationConfig, create_platform, deploy_benchmark
    from repro.workload import PoissonArrivals, WorkloadTrace

    platform = create_platform(Provider.AWS, SimulationConfig(seed=1))
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    trace = WorkloadTrace.synthesize(fname, PoissonArrivals(5.0), duration_s=600, rng=1)
    result = platform.run_workload(trace)
    print(result.cold_start_rate, result.total_cost_usd)
"""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ConstantRateArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from .engine import FunctionWorkloadSummary, WorkloadEngine, WorkloadResult
from .scenario import (
    STANDARD_PATTERNS,
    FunctionTraffic,
    Scenario,
    WorkflowTraffic,
    standard_scenario,
)
from .trace import TRACE_FORMAT_VERSION, MergedWorkloadTrace, WorkloadTrace

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ConstantRateArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "FunctionWorkloadSummary",
    "WorkloadEngine",
    "WorkloadResult",
    "STANDARD_PATTERNS",
    "FunctionTraffic",
    "Scenario",
    "WorkflowTraffic",
    "standard_scenario",
    "TRACE_FORMAT_VERSION",
    "MergedWorkloadTrace",
    "WorkloadTrace",
]
