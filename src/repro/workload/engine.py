"""The event-queue workload engine.

This is the scheduling layer that turns the single-request simulator into a
trace-driven system.  ``invoke`` and ``invoke_batch`` advance the virtual
clock once per call, so a container is either free or reserved for a whole
batch.  The engine instead replays a :class:`~repro.workload.trace.WorkloadTrace`
through a **min-heap event queue** over the virtual clock:

* every request is an *arrival* event at its trace timestamp;
* simulating an invocation determines its finish time, which is pushed as a
  *completion* event onto the heap;
* before an arrival is scheduled, all completions up to that instant are
  popped, releasing their sandboxes.

A sandbox is therefore occupied exactly between its invocation's start and
finish, and warm reuse, cold starts, eviction and concurrency all *emerge
from the overlap structure* of the trace: two requests 50 ms apart hitting a
200 ms function need two sandboxes, while the same two requests 5 s apart
share one.  Occupancy is the pool's multiset
(:meth:`~repro.simulator.containers.ContainerPool.reserve` /
:meth:`~repro.simulator.containers.ContainerPool.release`): dispatching an
invocation takes a slot, popping its completion returns it, which carries
exactly the per-execution multiplicity Azure's shared function-app
instances need.

Two aggregation modes:

* ``run(trace)`` (default) materialises every
  :class:`~repro.faas.invocation.InvocationRecord` — exact percentiles,
  full drill-down, O(invocations) memory;
* ``run(trace, keep_records=False)`` streams records into per-function
  accumulators (counts, costs, Welford moments and mergeable reservoir percentile
  sketches from :mod:`repro.stats.streaming`) as they are produced — O(functions)
  memory, the mode for million-invocation traces.  ``trace`` may then be a
  lazy iterable of requests.

The engine is deterministic: the same platform seed and the same trace
produce identical schedules, cold-start counts and cost totals, in either
aggregation mode.

**Overload mode** (:mod:`repro.concurrency`, enabled through
:attr:`repro.config.SimulationConfig.overload`): before dispatching, the
engine consults the function's admission gate.  Over-limit *synchronous*
(HTTP/SDK) requests are throttled and fed to the client retry policy —
re-attempts ride a feedback heap merged with the arrival stream (the same
no-re-sort discipline the workflow engine uses), so the event queue stays
time-sorted.  Over-limit *asynchronous* (queue/storage/timer) requests
spill into a bounded per-function admission queue drained as completions
free capacity, with age-based drops.  Every request still yields exactly
one record carrying its terminal outcome, attempt count and
backoff/queueing delay; records in record mode are ordered by the
request's position in the trace (identical to production order when
throttling is off).

**Fault plane & client resilience** (:mod:`repro.faults`,
:mod:`repro.resilience`): the same controlled replay path also injects
scheduled faults and runs the client's defences, composing with the retry
feedback heap without ever re-sorting the event queue:

* an arrival first consults the function's **circuit breaker** — an open
  breaker rejects instantly (``SHORT_CIRCUITED``), with no platform
  contact and no breaker feedback;
* inside an **outage window** the attempt fails at the fault-response
  instant (one gateway round trip, or the full function timeout in
  ``hang`` mode); synchronous clients may re-attempt via the fault retry
  policy on the same feedback heap, asynchronous deliveries are lost
  (``FAULTED``);
* admitted executions apply due **container crashes** to the warm pool,
  scale their draws by active **latency storms**, may send a **hedge
  duplicate** (first completion wins, both billed), and flip to ``stale``
  failures when admitted past the client deadline;
* every attempt outcome the client observes — execution result, fault
  response, 429 — feeds the breaker at its response instant via
  container-less completion events, so breaker state is a pure function
  of the function's own timeline and sharded replay stays bit-identical.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field, replace
from operator import attrgetter
from typing import TYPE_CHECKING, Iterable, Iterator

from ..concurrency import AdmissionQueue, QueuedInvocation
from ..config import InvocationOutcome, Provider, StartType, TriggerType
from ..exceptions import ConfigurationError
from ..faas.billing import CostBreakdown
from ..faas.invocation import InvocationRecord, InvocationRequest
from ..stats.streaming import StreamingSummary
from ..stats.summary import DistributionSummary, summarize
from .trace import MergedWorkloadTrace, WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform

#: Evicted sandboxes are pruned from the pools every this many requests, so
#: the pool bookkeeping stays O(live sandboxes) instead of O(all ever made).
_PRUNE_INTERVAL = 1024

#: Trigger channels whose invocations are fire-and-forget: over the
#: concurrency limit they spill into the admission queue instead of
#: receiving a synchronous 429.
ASYNC_TRIGGERS = frozenset((TriggerType.QUEUE, TriggerType.STORAGE, TriggerType.TIMER))

#: Breaker-signal codes carried on completion entries of the controlled
#: replay loop (:meth:`WorkloadEngine._stream_overload`).  Throttles are a
#: distinct code because the breaker treats them asymmetrically (ignored
#: while CLOSED, failed-probe while HALF_OPEN — see
#: :meth:`repro.resilience.CircuitBreaker.on_outcome`).
_SIG_FAILURE, _SIG_SUCCESS, _SIG_THROTTLE = 0, 1, 2

#: Sentinel a *feedback* request source (the workflow engine) may yield when
#: it has no request ready right now but more will appear once the engine
#: resolves work it is holding internally (admission-queued tasks, pending
#: retries).  The overload engine reacts by processing its earliest internal
#: event and pulling again; the source sees the resulting records before the
#: next pull, exactly like the ordinary feedback hand-off.  Never emitted in
#: fast (non-overload) mode, where the engine buffers nothing.
REPLENISH = object()


@dataclass(frozen=True)
class FunctionWorkloadSummary:
    """Per-function outcome of a workload replay.

    ``invocations`` counts every request, throttled and dropped ones
    included; ``failures`` counts only *executed* requests that failed.
    ``client_time`` aggregates executed requests only (a 429 or a queue
    drop has no meaningful service latency).  The overload counters are 0
    when the model is disabled.
    """

    function_name: str
    invocations: int
    cold_starts: int
    failures: int
    total_cost_usd: float
    client_time: DistributionSummary | None = None
    #: Requests that resolved as THROTTLED (retry budget exhausted).
    throttled: int = 0
    #: Asynchronous requests dropped from the admission queue.
    dropped: int = 0
    #: Rejected-attempt responses the client saw from requests that ended
    #: throttled or executed: 429s, and fault responses once the fault
    #: plane is active (an executed request's earlier attempts may have
    #: been either).
    throttle_events: int = 0
    #: Retry attempts made by the client (admitted or not).
    retries: int = 0
    #: Admitted asynchronous requests that waited in the admission queue.
    queued: int = 0
    #: Total admission-queue wait of those requests, seconds.
    queue_delay_s: float = 0.0
    #: Requests whose every attempt fell in a fault-plane outage window.
    faulted: int = 0
    #: Requests rejected client-side by an open circuit breaker.
    short_circuited: int = 0
    #: Hedge duplicates sent (each billed alongside its primary).
    hedges: int = 0

    @property
    def cold_start_rate(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def to_row(self) -> dict:
        row = {
            "function": self.function_name,
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failures,
            "cost_usd": round(self.total_cost_usd, 8),
        }
        if self.throttled or self.dropped or self.throttle_events or self.queued:
            row["throttled"] = self.throttled
            row["dropped"] = self.dropped
            row["retries"] = self.retries
            if self.queued:
                row["queue_delay_ms_mean"] = round(
                    1000.0 * self.queue_delay_s / self.queued, 2
                )
        if self.faulted or self.short_circuited or self.hedges:
            row["faulted"] = self.faulted
            row["short_circuited"] = self.short_circuited
            row["hedges"] = self.hedges
        if self.client_time is not None:
            row["client_p50_ms"] = round(self.client_time.median * 1000.0, 2)
            row["client_p95_ms"] = round(self.client_time.percentiles.get(95.0, float("nan")) * 1000.0, 2)
        return row


class _FunctionAccumulator:
    """Streaming per-function aggregates (O(1) state per function).

    Mergeable: shard accumulators for the same function fold together with
    :meth:`merge` — counts and cost sums exactly, latency distributions via
    :meth:`repro.stats.streaming.StreamingSummary.merge` (exact when one
    side is empty, which is the per-function sharding case).
    """

    __slots__ = (
        "function_name", "invocations", "cold_starts", "failures", "total_cost_usd",
        "client_time", "executed", "throttled", "dropped", "throttle_events",
        "retries", "queued", "queue_delay_s", "faulted", "short_circuited", "hedges",
    )

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.invocations = 0
        self.cold_starts = 0
        self.failures = 0
        self.total_cost_usd = 0.0
        self.client_time = StreamingSummary(key=function_name)
        self.executed = 0
        self.throttled = 0
        self.dropped = 0
        self.throttle_events = 0
        self.retries = 0
        self.queued = 0
        self.queue_delay_s = 0.0
        self.faulted = 0
        self.short_circuited = 0
        self.hedges = 0

    def add(self, record: InvocationRecord) -> None:
        self.invocations += 1
        outcome = record.outcome
        if not record.executed:
            # Non-executed terminal records usually cost nothing, but a
            # stale-resubmission saga that exhausted its budget against a
            # 429/outage/breaker rejection still billed the executions the
            # client timed out on — the terminal record carries them.
            self.total_cost_usd += record.cost.total
            self.hedges += record.hedges
        if outcome is InvocationOutcome.THROTTLED:
            # Every attempt of a finally-throttled request got a 429.
            self.throttled += 1
            self.throttle_events += record.attempts
            self.retries += record.attempts - 1
            return
        if outcome is InvocationOutcome.DROPPED:
            self.dropped += 1
            return
        if outcome is InvocationOutcome.FAULTED:
            self.faulted += 1
            self.retries += record.attempts - 1
            return
        if outcome is InvocationOutcome.SHORT_CIRCUITED:
            self.short_circuited += 1
            self.retries += record.attempts - 1
            return
        self.executed += 1
        self.hedges += record.hedges
        if record.attempts > 1:
            # Executed after backoff: all prior attempts were rejected
            # (429s, or fault responses once the fault plane is active).
            self.throttle_events += record.attempts - 1
            self.retries += record.attempts - 1
        elif record.admission_delay_s > 0.0:
            # Single-attempt admission delay = time in the async queue.
            self.queued += 1
            self.queue_delay_s += record.admission_delay_s
        if record.start_type is StartType.COLD:
            self.cold_starts += 1
        if not record.success:
            self.failures += 1
        self.total_cost_usd += record.cost.total
        self.client_time.add(record.client_time_s)

    def merge(self, other: "_FunctionAccumulator") -> None:
        self.invocations += other.invocations
        self.cold_starts += other.cold_starts
        self.failures += other.failures
        self.total_cost_usd += other.total_cost_usd
        self.client_time.merge(other.client_time)
        self.executed += other.executed
        self.throttled += other.throttled
        self.dropped += other.dropped
        self.throttle_events += other.throttle_events
        self.retries += other.retries
        self.queued += other.queued
        self.queue_delay_s += other.queue_delay_s
        self.faulted += other.faulted
        self.short_circuited += other.short_circuited
        self.hedges += other.hedges

    def summary(self) -> FunctionWorkloadSummary:
        return FunctionWorkloadSummary(
            function_name=self.function_name,
            invocations=self.invocations,
            cold_starts=self.cold_starts,
            failures=self.failures,
            total_cost_usd=self.total_cost_usd,
            client_time=self.client_time.to_summary() if self.executed else None,
            throttled=self.throttled,
            dropped=self.dropped,
            throttle_events=self.throttle_events,
            retries=self.retries,
            queued=self.queued,
            queue_delay_s=self.queue_delay_s,
            faulted=self.faulted,
            short_circuited=self.short_circuited,
            hedges=self.hedges,
        )


class _ReplayAccumulator:
    """Whole-replay streaming aggregates: span plus per-function state.

    The replay totals (invocations, cold starts, failures, cost) are summed
    from the per-function accumulators once at the end — only the span
    needs whole-replay tracking per record.  Float totals reduce in sorted
    function-name order, so a merge of per-shard accumulators
    (:meth:`merge`) produces byte-identical totals to a serial replay.
    """

    def __init__(self) -> None:
        self.first_submitted: float | None = None
        self.last_finished: float | None = None
        self.per_function: dict[str, _FunctionAccumulator] = {}

    def add(self, record: InvocationRecord) -> None:
        if self.first_submitted is None or record.submitted_at < self.first_submitted:
            self.first_submitted = record.submitted_at
        if self.last_finished is None or record.finished_at > self.last_finished:
            self.last_finished = record.finished_at
        accumulator = self.per_function.get(record.function_name)
        if accumulator is None:
            accumulator = self.per_function[record.function_name] = _FunctionAccumulator(
                record.function_name
            )
        accumulator.add(record)

    def merge(self, other: "_ReplayAccumulator") -> None:
        """Fold a shard's accumulator into this one (sharded replay merge)."""
        if other.first_submitted is not None and (
            self.first_submitted is None or other.first_submitted < self.first_submitted
        ):
            self.first_submitted = other.first_submitted
        if other.last_finished is not None and (
            self.last_finished is None or other.last_finished > self.last_finished
        ):
            self.last_finished = other.last_finished
        for fname, accumulator in other.per_function.items():
            mine = self.per_function.get(fname)
            if mine is None:
                self.per_function[fname] = accumulator
            else:
                mine.merge(accumulator)

    @property
    def span_s(self) -> float:
        if self.first_submitted is None or self.last_finished is None:
            return 0.0
        return self.last_finished - self.first_submitted

    def _ordered(self) -> list[_FunctionAccumulator]:
        return [self.per_function[fname] for fname in sorted(self.per_function)]

    @property
    def invocations(self) -> int:
        return sum(acc.invocations for acc in self.per_function.values())

    @property
    def cold_starts(self) -> int:
        return sum(acc.cold_starts for acc in self.per_function.values())

    @property
    def failures(self) -> int:
        return sum(acc.failures for acc in self.per_function.values())

    @property
    def total_cost_usd(self) -> float:
        # Sorted-name reduction: the float sum is independent of function
        # first-appearance order, hence identical for serial and merged
        # sharded replays.
        return sum(acc.total_cost_usd for acc in self._ordered())

    @property
    def executed(self) -> int:
        return sum(acc.executed for acc in self.per_function.values())

    @property
    def throttled(self) -> int:
        return sum(acc.throttled for acc in self.per_function.values())

    @property
    def dropped(self) -> int:
        return sum(acc.dropped for acc in self.per_function.values())

    @property
    def throttle_events(self) -> int:
        return sum(acc.throttle_events for acc in self.per_function.values())

    @property
    def retries(self) -> int:
        return sum(acc.retries for acc in self.per_function.values())

    @property
    def queued(self) -> int:
        return sum(acc.queued for acc in self.per_function.values())

    @property
    def faulted(self) -> int:
        return sum(acc.faulted for acc in self.per_function.values())

    @property
    def short_circuited(self) -> int:
        return sum(acc.short_circuited for acc in self.per_function.values())

    @property
    def hedges(self) -> int:
        return sum(acc.hedges for acc in self.per_function.values())

    @property
    def queue_delay_s(self) -> float:
        # Sorted-name reduction, as for costs: exact under sharded merge.
        return sum(acc.queue_delay_s for acc in self._ordered())

    def summaries(self) -> dict[str, FunctionWorkloadSummary]:
        return {
            fname: self.per_function[fname].summary() for fname in sorted(self.per_function)
        }


@dataclass
class WorkloadResult:
    """Everything a workload replay produced.

    In record-keeping mode the aggregate properties are derived exactly from
    ``records``; in streaming-aggregation mode ``records`` is empty and the
    same properties read the pre-aggregated counters instead (with
    per-function latency distributions carried by reservoir estimates in
    ``streaming_summaries``).
    """

    provider: Provider
    records: list[InvocationRecord] = field(default_factory=list)
    #: Span of simulated time between first submission and last completion.
    simulated_span_s: float = 0.0
    #: Wall-clock seconds the replay took (simulator throughput measure).
    wall_clock_s: float = 0.0
    #: Largest number of invocations in flight at any instant.
    peak_in_flight: int = 0
    #: Aggregate counters (authoritative when ``records`` is empty).
    invocation_count: int = 0
    cold_start_total: int = 0
    failure_total: int = 0
    cost_usd_total: float = 0.0
    #: Overload/fault/resilience counters (0 whenever those models are
    #: disabled).  ``executed_total`` is counted independently of the
    #: rejection counters, so ``executed + throttled + dropped + faulted +
    #: short_circuited == invocations`` is a real conservation check, not
    #: an identity.
    executed_total: int = 0
    throttled_total: int = 0
    dropped_total: int = 0
    throttle_event_total: int = 0
    retry_total: int = 0
    queued_total: int = 0
    queue_delay_s_total: float = 0.0
    faulted_total: int = 0
    short_circuited_total: int = 0
    hedge_total: int = 0
    #: Per-function summaries from the streaming accumulators (streaming
    #: mode only; ``None`` when full records are available).
    streaming_summaries: dict[str, FunctionWorkloadSummary] | None = None
    #: Supervision diagnostics from a supervised sharded replay
    #: (:class:`repro.parallel.supervisor.SupervisionReport` as a dict):
    #: retries, pool breaks, timeouts, quarantined shards, degradation.
    #: ``None`` for serial and unsupervised runs; deliberately excluded
    #: from ``to_dict()`` so supervised results compare byte-identical.
    supervision: dict | None = None
    #: Windowed simulated-time series (:class:`repro.observe.timeseries
    #: .TimeSeriesBuilder`) when the replay was asked to build one;
    #: excluded from ``to_dict()`` like ``supervision``.
    timeseries: object | None = None
    #: Host-side wall-clock profile (:class:`repro.observe.profile
    #: .ReplayProfile`) when requested; excluded from ``to_dict()``.
    profile: object | None = None

    @property
    def invocations(self) -> int:
        return len(self.records) if self.records else self.invocation_count

    @property
    def cold_start_count(self) -> int:
        if self.records:
            return sum(1 for record in self.records if record.start_type is StartType.COLD)
        return self.cold_start_total

    @property
    def cold_start_rate(self) -> float:
        invocations = self.invocations
        return self.cold_start_count / invocations if invocations else 0.0

    @property
    def failure_count(self) -> int:
        """Executed requests that failed (throttles/drops counted separately)."""
        if self.records:
            return sum(
                1 for record in self.records if record.outcome is InvocationOutcome.FAILED
            )
        return self.failure_total

    @property
    def executed_count(self) -> int:
        """Requests that actually ran (admitted first try, retried or queued)."""
        if self.records:
            return sum(1 for record in self.records if record.executed)
        return self.executed_total

    @property
    def throttled_count(self) -> int:
        """Requests that resolved as THROTTLED (retry budget exhausted)."""
        if self.records:
            return sum(
                1 for record in self.records if record.outcome is InvocationOutcome.THROTTLED
            )
        return self.throttled_total

    @property
    def dropped_count(self) -> int:
        """Asynchronous requests dropped from the admission queue."""
        if self.records:
            return sum(
                1 for record in self.records if record.outcome is InvocationOutcome.DROPPED
            )
        return self.dropped_total

    @property
    def faulted_count(self) -> int:
        """Requests whose every attempt fell in a fault-plane outage window."""
        if self.records:
            return sum(
                1 for record in self.records if record.outcome is InvocationOutcome.FAULTED
            )
        return self.faulted_total

    @property
    def short_circuited_count(self) -> int:
        """Requests rejected client-side by an open circuit breaker."""
        if self.records:
            return sum(
                1
                for record in self.records
                if record.outcome is InvocationOutcome.SHORT_CIRCUITED
            )
        return self.short_circuited_total

    @property
    def hedge_count(self) -> int:
        """Hedge duplicates sent (each billed alongside its primary)."""
        if self.records:
            return sum(record.hedges for record in self.records)
        return self.hedge_total

    @property
    def retry_count(self) -> int:
        """Client retry attempts across all requests."""
        if self.records:
            return sum(record.attempts - 1 for record in self.records)
        return self.retry_total

    @property
    def queued_count(self) -> int:
        """Admitted requests that waited in the admission queue first."""
        if self.records:
            return sum(
                1
                for record in self.records
                if record.executed and record.attempts == 1 and record.admission_delay_s > 0.0
            )
        return self.queued_total

    @property
    def queue_delay_s(self) -> float:
        """Total admission-queue wait of queued-then-admitted requests."""
        if self.records:
            return sum(
                record.admission_delay_s
                for record in self.records
                if record.executed and record.attempts == 1
            )
        return self.queue_delay_s_total

    @property
    def total_cost_usd(self) -> float:
        if self.records:
            return sum(record.cost.total for record in self.records)
        return self.cost_usd_total

    @property
    def throughput_per_s(self) -> float:
        """Invocations simulated per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.invocations / self.wall_clock_s

    def per_function(self) -> dict[str, FunctionWorkloadSummary]:
        """Aggregate the records into per-function summaries.

        Exact (with confidence intervals) when records were kept; streaming
        reservoir estimates otherwise.
        """
        if not self.records:
            return dict(self.streaming_summaries or {})
        grouped: dict[str, list[InvocationRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.function_name, []).append(record)
        summaries = {}
        for fname in sorted(grouped):
            records = grouped[fname]
            executed = [r for r in records if r.executed]
            summaries[fname] = FunctionWorkloadSummary(
                function_name=fname,
                invocations=len(records),
                cold_starts=sum(1 for r in executed if r.start_type is StartType.COLD),
                failures=sum(1 for r in executed if not r.success),
                # All records, not just executed ones: an exhausted
                # stale-resubmission saga's terminal record can be
                # non-executed yet carry the cost of the executions the
                # client timed out on.
                total_cost_usd=sum(r.cost.total for r in records),
                client_time=summarize([r.client_time_s for r in executed]) if executed else None,
                throttled=sum(
                    1 for r in records if r.outcome is InvocationOutcome.THROTTLED
                ),
                dropped=sum(1 for r in records if r.outcome is InvocationOutcome.DROPPED),
                throttle_events=sum(
                    (r.attempts - 1) if r.executed else r.attempts
                    for r in records
                    if r.executed or r.outcome is InvocationOutcome.THROTTLED
                ),
                retries=sum(r.attempts - 1 for r in records),
                faulted=sum(
                    1 for r in records if r.outcome is InvocationOutcome.FAULTED
                ),
                short_circuited=sum(
                    1
                    for r in records
                    if r.outcome is InvocationOutcome.SHORT_CIRCUITED
                ),
                hedges=sum(r.hedges for r in records),
                queued=sum(
                    1 for r in executed if r.attempts == 1 and r.admission_delay_s > 0.0
                ),
                queue_delay_s=sum(
                    r.admission_delay_s
                    for r in executed
                    if r.attempts == 1 and r.admission_delay_s > 0.0
                ),
            )
        return summaries

    def to_rows(self) -> list[dict]:
        """Per-function table rows (for :func:`repro.reporting.tables.format_table`)."""
        return [summary.to_row() for summary in self.per_function().values()]

    def summary_row(self) -> dict:
        """One aggregate row describing the whole replay."""
        row = {
            "provider": self.provider.value,
            "invocations": self.invocations,
            "cold_starts": self.cold_start_count,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failure_count,
            "peak_in_flight": self.peak_in_flight,
            "cost_usd": round(self.total_cost_usd, 8),
            "simulated_span_s": round(self.simulated_span_s, 3),
            "throughput_inv_per_s": round(self.throughput_per_s, 1),
        }
        throttled, dropped, retries = self.throttled_count, self.dropped_count, self.retry_count
        if throttled or dropped or retries:
            row["throttled"] = throttled
            row["dropped"] = dropped
            row["retries"] = retries
        faulted, short_circuited, hedges = (
            self.faulted_count, self.short_circuited_count, self.hedge_count,
        )
        if faulted or short_circuited or hedges:
            row["faulted"] = faulted
            row["short_circuited"] = short_circuited
            row["hedges"] = hedges
        return row


def streaming_result(
    provider: Provider,
    accumulator: _ReplayAccumulator,
    wall_clock_s: float,
    peak_in_flight: int,
) -> WorkloadResult:
    """Build the streaming-mode :class:`WorkloadResult` from an accumulator.

    Shared by the serial engine and the sharded-replay merge
    (:mod:`repro.parallel`), so both paths reduce the accumulator with the
    same code — and therefore the same float-summation order.
    """
    return WorkloadResult(
        provider=provider,
        records=[],
        simulated_span_s=accumulator.span_s,
        wall_clock_s=wall_clock_s,
        peak_in_flight=peak_in_flight,
        invocation_count=accumulator.invocations,
        cold_start_total=accumulator.cold_starts,
        failure_total=accumulator.failures,
        cost_usd_total=accumulator.total_cost_usd,
        executed_total=accumulator.executed,
        throttled_total=accumulator.throttled,
        dropped_total=accumulator.dropped,
        throttle_event_total=accumulator.throttle_events,
        retry_total=accumulator.retries,
        queued_total=accumulator.queued,
        queue_delay_s_total=accumulator.queue_delay_s,
        faulted_total=accumulator.faulted,
        short_circuited_total=accumulator.short_circuited,
        hedge_total=accumulator.hedges,
        streaming_summaries=accumulator.summaries(),
    )


class WorkloadEngine:
    """Replays invocation streams against one simulated platform."""

    def __init__(self, platform: "SimulatedPlatform"):
        self.platform = platform
        #: Optional :class:`repro.observe.events.ReplayObserver`.  Hooks
        #: fire post-decision with values the engine already computed —
        #: never an RNG draw, never an ordering change — so an attached
        #: observer leaves the replay bit-identical (``None`` = detached,
        #: and every hook site is guarded so detachment costs nothing).
        self.observer = None
        #: Peak concurrency observed by the most recent stream() pass.
        self.last_peak_in_flight = 0
        #: Set while an overload stream is active: callable returning the
        #: earliest trace-relative time at which buffered internal work
        #: (due retries, completions that would drain an admission queue)
        #: could emit a record.  See :meth:`feedback_horizon`.
        self._horizon_fn = None

    def feedback_horizon(self) -> float | None:
        """Earliest trace-relative instant buffered work could emit a record.

        A *feedback* request source (the workflow engine) must not commit to
        its next event while the engine holds buffered work that could
        resolve records — and thereby schedule new, earlier source events —
        at or before that event's time.  The source compares this horizon
        against its own next event and yields :data:`REPLENISH` instead when
        the buffered work comes first.  ``None`` whenever nothing buffered
        can produce a record (always, in fast mode: it buffers nothing).
        """
        fn = self._horizon_fn
        return fn() if fn is not None else None

    def stream(
        self,
        requests: Iterable[InvocationRequest],
        positions: Iterable[int] | None = None,
    ) -> Iterator[InvocationRecord]:
        """Replay ``requests`` lazily, yielding one record per request.

        Requests must arrive in non-decreasing ``submitted_at`` order
        (:class:`~repro.workload.trace.WorkloadTrace` guarantees this).
        Timestamps are relative: request time 0 is the platform clock's
        position when the stream starts.  When the stream is exhausted the
        clock is advanced to the last completion, so a subsequent
        ``warm_container_count`` or ``invoke`` sees the post-workload state.

        Sandbox occupancy lives in the pools' reservation multisets: each
        dispatched invocation holds one slot until its completion event is
        popped (or, if the stream is abandoned, until the generator is
        closed — outstanding slots are released on the way out).

        ``positions`` overrides the default ``0, 1, 2, ...`` numbering of
        requests (one index per request, in consumption order); each record
        carries its request's number as ``request_index``.  Sharded replay
        passes the indices from the *unsharded* stream so merged records
        sort back into exact arrival order.  With the overload model
        enabled, records are yielded as their requests *resolve* — a
        retried or queued request's record appears after later arrivals
        that resolved first; ``request_index`` recovers arrival order.
        """
        if getattr(self.platform, "_controlled_replay", False):
            return self._stream_overload(requests, positions)
        return self._stream_fast(requests, positions)

    def _stream_fast(
        self,
        requests: Iterable[InvocationRequest],
        positions: Iterable[int] | None = None,
    ) -> Iterator[InvocationRecord]:
        """The no-throttling hot path (admission is unconditional)."""
        platform = self.platform
        base = platform.clock.now()
        sequence = itertools.count()
        position_iter = iter(positions) if positions is not None else itertools.count()
        # Completion events: (finish_time, tie-break, function, container_id).
        completions: list[tuple[float, int, str, str]] = []
        # In-flight executions per function: the concurrency the invocation
        # model sees.  Scoped per function — not the whole-platform heap
        # size — so one function's burst-failure behaviour depends only on
        # its own overlap structure (explicit per-function isolation; the
        # invariant sharded replay relies on).
        in_flight_by_fn: dict[str, int] = {}
        last_submitted = 0.0
        last_finish = base
        processed = 0
        peak = 0
        self.last_peak_in_flight = 0

        try:
            for request in requests:
                if request.submitted_at < last_submitted:
                    raise ConfigurationError(
                        "workload requests must be sorted by submission time "
                        f"({request.submitted_at:.6f} after {last_submitted:.6f})"
                    )
                last_submitted = request.submitted_at
                now = base + request.submitted_at

                # Release every sandbox whose invocation completed by `now`.
                while completions and completions[0][0] <= now:
                    _, _, done_fname, container_id = heapq.heappop(completions)
                    platform._release_container(done_fname, container_id)
                    in_flight_by_fn[done_fname] -= 1

                platform.clock.advance_to(now)
                in_flight = len(completions)
                fname = request.function_name
                fn_in_flight = in_flight_by_fn.get(fname, 0)
                record = platform._simulate_invocation(
                    fname,
                    request.payload,
                    request.trigger,
                    request.payload_bytes,
                    concurrency=fn_in_flight + 1,
                    start_at=now,
                    request_index=next(position_iter),
                )
                in_flight_by_fn[fname] = fn_in_flight + 1
                heapq.heappush(
                    completions,
                    (record.finished_at, next(sequence), request.function_name, record.container_id),
                )
                if in_flight + 1 > peak:
                    peak = in_flight + 1
                if record.finished_at > last_finish:
                    last_finish = record.finished_at

                processed += 1
                if processed % _PRUNE_INTERVAL == 0:
                    self._prune_pools()
                yield record

            if last_finish > platform.clock.now():
                platform.clock.advance_to(last_finish)
        finally:
            self.last_peak_in_flight = peak
            # Return any outstanding occupancy slots (normal exhaustion: all
            # in-flight work has finished by `last_finish`; early abandonment:
            # the sandboxes must not stay reserved forever).
            while completions:
                _, _, done_fname, container_id = heapq.heappop(completions)
                platform._release_container(done_fname, container_id)

    def _stream_overload(
        self,
        requests: Iterable[InvocationRequest],
        positions: Iterable[int] | None = None,
    ) -> Iterator[InvocationRecord]:
        """The controlled replay loop (overload, faults and/or resilience).

        Three event sources merge in time order without ever re-sorting the
        heap of scheduled work:

        * **arrivals** from the (already sorted) input stream;
        * **retry attempts** of rejected synchronous requests (throttled,
          or faulted during an outage), pushed onto a feedback heap at
          their backoff deadline — taken before an arrival with the same
          timestamp;
        * **completions**, which free capacity, feed circuit breakers and
          drain the owning function's admission queue at the completion
          instant.

        Completion entries are ``(finish, tie-break, function, container,
        counted, signal)``: ``container`` is empty for container-less
        events (fault/429 responses whose only job is delivering breaker
        evidence), ``counted`` marks entries that represent one logical
        in-flight request (hedge losers do not — the pair is one request),
        and ``signal`` is the verdict to feed the breaker (``None`` when
        no breaker is listening, else a success / failure / throttle
        code).  Heap order never inspects the tail fields: the tie-break
        is unique.

        Everything that orders a single function's events — its arrivals,
        its retries, its completions, its queue, its breaker and fault
        schedule — is derived from that function's own history, so a
        controlled replay shards exactly like an unthrottled one.
        """
        platform = self.platform
        observer = self.observer
        overload = platform._overload
        policy = platform._retry_policy
        hedge = platform._hedge
        stale_after_s = platform._stale_after_s
        client_policy = platform._client_retry_policy
        base = platform.clock.now()
        sequence = itertools.count()
        retry_sequence = itertools.count()
        position_iter = iter(positions) if positions is not None else itertools.count()
        completions: list[tuple[float, int, str, str, bool, int | None]] = []
        #: Feedback heap of retry attempts: (due [trace-relative],
        #: tie-break, request, position, first_submitted, attempts,
        #: carried).  ``carried`` is ``None`` except for stale-resubmission
        #: sagas, where it accumulates the (cost, hedges) of executions the
        #: client already timed out on.
        retries: list[
            tuple[
                float, int, InvocationRequest, int, float, int,
                tuple[CostBreakdown, int] | None,
            ]
        ] = []
        queues: dict[str, AdmissionQueue] = {}
        in_flight_by_fn: dict[str, int] = {}
        #: Logical requests currently executing (counted completion
        #: entries).  Tracked explicitly rather than as ``len(completions)``
        #: because the heap also carries breaker-signal events and hedge
        #: losers, which are not in-flight requests.
        in_flight_total = 0
        last_submitted = 0.0
        last_finish = base
        processed = 0
        peak = 0
        self.last_peak_in_flight = 0
        #: Records produced since the last flush point, yielded before the
        #: engine pulls the next request (the feedback contract: a consumer
        #: sees every resolved record before it is asked for more input).
        out: list[InvocationRecord] = []

        def execute(
            request: InvocationRequest, position: int, now_abs: float,
            first_submitted_abs: float, attempts: int,
            carried: tuple[CostBreakdown, int] | None = None,
        ) -> InvocationRecord | None:
            """Dispatch an admitted request at ``now_abs``.

            Returns the request's terminal record — or ``None`` when the
            response came back past the client's staleness deadline and the
            client resubmitted (the doomed execution's cost rides along in
            the retry's ``carried`` slot until a terminal record emits it).
            """
            nonlocal peak, last_finish, processed, in_flight_total
            fname = request.function_name
            state = platform._runtime_state(fname)
            sync = request.trigger not in ASYNC_TRIGGERS
            fault_scale = None
            fault_state = state.fault_state
            if fault_state is not None:
                now_rel = now_abs - base
                crash_evicted = fault_state.apply_crashes(state.pool, now_rel)
                if crash_evicted and observer is not None:
                    observer.on_container_evict(fname, crash_evicted, now_abs, "crash")
                fault_scale = fault_state.multipliers_at(now_rel)
            fn_in_flight = in_flight_by_fn.get(fname, 0)
            record = platform._simulate_invocation(
                fname,
                request.payload,
                request.trigger,
                request.payload_bytes,
                concurrency=fn_in_flight + 1,
                start_at=now_abs,
                request_index=position,
                fault_scale=fault_scale,
            )
            if (
                hedge is not None
                and sync
                and record.finished_at - now_abs > hedge.delay_s
            ):
                # The primary will still be running when the hedge timer
                # fires: the client sends one duplicate.  First completion
                # wins; the loser still occupies its sandbox to its own
                # finish (the provider cannot un-run it) and both attempts
                # are billed.  The duplicate rides its primary's fault view
                # — crashes and storm multipliers as of the dispatch
                # instant — keeping the pair a single scheduling decision.
                duplicate = platform._simulate_invocation(
                    fname,
                    request.payload,
                    request.trigger,
                    request.payload_bytes,
                    concurrency=fn_in_flight + 2,
                    start_at=now_abs + hedge.delay_s,
                    request_index=position,
                    fault_scale=fault_scale,
                )
                if duplicate.finished_at < record.finished_at:
                    winner, loser = duplicate, record
                else:
                    winner, loser = record, duplicate
                # The loser's completion releases its sandbox but is not a
                # logical request (counted=False) and carries no breaker
                # evidence — the client only observes the winning response.
                heapq.heappush(
                    completions,
                    (loser.finished_at, next(sequence), fname, loser.container_id, False, None),
                )
                if loser.finished_at > last_finish:
                    last_finish = loser.finished_at
                record = replace(
                    winner,
                    admitted_at=now_abs,
                    cost=record.cost + duplicate.cost,
                    hedges=1,
                )
            if attempts > 1 or first_submitted_abs != record.submitted_at:
                # Retried, queue-delayed or hedge-won-by-duplicate: the
                # client's clock started at the original submission, not at
                # the attempt that produced the winning response.
                record = replace(
                    record,
                    submitted_at=first_submitted_abs,
                    client_time_s=record.finished_at - first_submitted_abs,
                    attempts=attempts,
                    admission_delay_s=now_abs - first_submitted_abs,
                )
            stale = (
                stale_after_s is not None
                and sync
                and now_abs - first_submitted_abs > stale_after_s
            )
            if stale and record.success:
                # Admitted past the client deadline: the work ran and is
                # billed, but nobody was waiting for the answer.
                record = replace(
                    record,
                    success=False,
                    outcome=InvocationOutcome.FAILED,
                    error="stale",
                )
            signal = None
            if state.breaker is not None and sync:
                signal = _SIG_SUCCESS if record.success else _SIG_FAILURE
            in_flight_by_fn[fname] = fn_in_flight + 1
            in_flight_total += 1
            heapq.heappush(
                completions,
                (record.finished_at, next(sequence), fname, record.container_id, True, signal),
            )
            if in_flight_total > peak:
                peak = in_flight_total
            if record.finished_at > last_finish:
                last_finish = record.finished_at
            processed += 1
            if processed % _PRUNE_INTERVAL == 0:
                self._prune_pools()
            if stale and client_policy is not None:
                # The client's per-attempt timeout already fired: from its
                # point of view this attempt failed, so it retries — while
                # the timed-out execution still runs (and bills).  This is
                # the work-amplification anti-pattern behind metastable
                # retry storms: once a saga is past its original deadline,
                # every further execution is doomed to be stale too, so a
                # congested platform burns its whole capacity on worthless
                # work until the retry budgets run out.  A circuit breaker
                # (which counts these stale responses as failures) is the
                # escape hatch.
                delay = client_policy.next_delay(attempts, state.client_retry_stream)
                if delay is not None:
                    carried_cost = record.cost
                    carried_hedges = record.hedges
                    if carried is not None:
                        carried_cost = carried[0] + carried_cost
                        carried_hedges += carried[1]
                    heapq.heappush(
                        retries,
                        (
                            now_abs - base + delay,
                            next(retry_sequence),
                            request,
                            position,
                            first_submitted_abs - base,
                            attempts,
                            (carried_cost, carried_hedges),
                        ),
                    )
                    return None
            if carried is not None:
                # Terminal record of a resubmission saga: bill every
                # execution the saga burned, not just the last one.
                record = replace(
                    record,
                    cost=record.cost + carried[0],
                    hedges=record.hedges + carried[1],
                )
            return record

        def drain_queue(fname: str, now_abs: float) -> None:
            """Admit (or age-drop) spilled requests of ``fname`` at ``now_abs``."""
            queue = queues.get(fname)
            if queue is None or not len(queue):
                return
            state = platform._runtime_state(fname)
            fault_state = state.fault_state
            if fault_state is not None and fault_state.outage_at(now_abs - base) is not None:
                # The function's region is down: spilled work holds in the
                # queue (ageing out as usual) until the outage window ends.
                return
            throttle = state.throttle
            while len(queue):
                if queue.head_expired(now_abs):
                    entry = queue.pop()
                    out.append(
                        platform._overload_record(
                            fname,
                            outcome=InvocationOutcome.DROPPED,
                            submitted_at=entry.enqueued_at,
                            finished_at=now_abs,
                            attempts=1,
                            admission_delay_s=now_abs - entry.enqueued_at,
                            request_index=entry.position,
                            error="expired",
                        )
                    )
                    continue
                if not throttle.try_admit(now_abs, in_flight_by_fn.get(fname, 0)):
                    break
                entry = queue.pop()
                record = execute(
                    entry.request, entry.position, now_abs, entry.enqueued_at, 1
                )
                if record is not None:  # async: never stale-resubmitted
                    out.append(record)
            if not len(queue):
                # Drop drained queues so the feedback-horizon scan stays
                # O(functions currently spilling), not O(ever spilled).
                del queues[fname]

        def pop_completions(until_abs: float) -> None:
            """Release sandboxes done by ``until_abs``, draining their queues.

            All completions sharing one finish instant are released *before*
            any queue drains at that instant, so an admission triggered by
            the drain sees the post-release concurrency — matching the
            interval reference :meth:`_peak_in_flight`, which orders ``-1``
            events before ``+1`` events at equal times.
            """
            nonlocal in_flight_total
            while completions and completions[0][0] <= until_abs:
                finish = completions[0][0]
                drained_fnames: list[str] = []
                while completions and completions[0][0] == finish:
                    _, _, done_fname, container_id, counted, signal = heapq.heappop(
                        completions
                    )
                    if container_id:
                        platform._release_container(done_fname, container_id)
                    if counted:
                        in_flight_by_fn[done_fname] -= 1
                        in_flight_total -= 1
                    if signal is not None:
                        # Breaker verdicts apply at the instant the client
                        # observes the response — never at dispatch time.
                        done_breaker = platform._runtime_state(done_fname).breaker
                        before_state = done_breaker.state
                        done_breaker.on_outcome(
                            finish,
                            signal == _SIG_SUCCESS,
                            throttle=signal == _SIG_THROTTLE,
                        )
                        if observer is not None and done_breaker.state is not before_state:
                            observer.on_breaker_transition(
                                done_fname,
                                finish,
                                before_state.value,
                                done_breaker.state.value,
                            )
                    queue = queues.get(done_fname)
                    if queue is not None and len(queue) and done_fname not in drained_fnames:
                        drained_fnames.append(done_fname)
                for done_fname in drained_fnames:
                    platform.clock.advance_to(finish)
                    drain_queue(done_fname, finish)

        def handle(
            request: InvocationRequest, position: int, now_rel: float,
            first_rel: float, attempts: int,
            carried: tuple[CostBreakdown, int] | None = None,
        ) -> None:
            """Process one admission attempt at ``now_rel`` (arrival or retry)."""
            nonlocal last_finish
            now_abs = base + now_rel
            pop_completions(now_abs)
            platform.clock.advance_to(now_abs)
            fname = request.function_name
            state = platform._runtime_state(fname)
            first_abs = base + first_rel
            sync = request.trigger not in ASYNC_TRIGGERS
            breaker = state.breaker

            def terminal(record: InvocationRecord) -> InvocationRecord:
                """Fold a resubmission saga's burned executions into its
                terminal record (no-op for ordinary requests)."""
                if carried is None:
                    return record
                return replace(
                    record,
                    cost=record.cost + carried[0],
                    hedges=record.hedges + carried[1],
                )

            if breaker is not None and sync:
                before_state = breaker.state
                allowed = breaker.allow(now_abs)
                if observer is not None and breaker.state is not before_state:
                    # allow() is where OPEN -> HALF_OPEN happens; observed
                    # post-decision, nothing about the verdict changes.
                    observer.on_breaker_transition(
                        fname, now_abs, before_state.value, breaker.state.value
                    )
                if not allowed:
                    # The client's breaker rejects locally: the platform
                    # never sees the request, nothing new is billed, and the
                    # breaker learns nothing from its own rejections (only
                    # probe and pass-through outcomes feed the window).
                    out.append(
                        terminal(
                            platform._overload_record(
                                fname,
                                outcome=InvocationOutcome.SHORT_CIRCUITED,
                                submitted_at=first_abs,
                                finished_at=now_abs,
                                attempts=attempts + 1,
                                admission_delay_s=now_abs - first_abs,
                                request_index=position,
                                error="breaker-open",
                            )
                        )
                    )
                    return
            fault_state = state.fault_state
            outage = fault_state.outage_at(now_rel) if fault_state is not None else None
            if outage is not None:
                attempts += 1
                if outage.mode == "hang":
                    # The request holds a client connection until its own
                    # timeout budget expires — no sandbox is occupied.
                    response_s = platform.get_function(fname).config.timeout_s
                else:
                    response_s = platform._throttle_response_s(request.trigger)
                finished_abs = now_abs + response_s
                if breaker is not None and sync:
                    # The error response reaches the client at
                    # ``finished_abs``; deliver the breaker verdict there
                    # via a container-less completion event.
                    heapq.heappush(
                        completions,
                        (finished_abs, next(sequence), fname, "", False, _SIG_FAILURE),
                    )
                delay = (
                    client_policy.next_delay(attempts, state.client_retry_stream)
                    if (sync and client_policy is not None)
                    else None
                )
                if delay is None:
                    if finished_abs > last_finish:
                        last_finish = finished_abs
                    out.append(
                        terminal(
                            platform._overload_record(
                                fname,
                                outcome=InvocationOutcome.FAULTED,
                                submitted_at=first_abs,
                                finished_at=finished_abs,
                                attempts=attempts,
                                admission_delay_s=now_abs - first_abs,
                                request_index=position,
                                error=f"outage-{outage.mode}",
                            )
                        )
                    )
                else:
                    heapq.heappush(
                        retries,
                        (
                            now_rel + response_s + delay,
                            next(retry_sequence),
                            request,
                            position,
                            first_rel,
                            attempts,
                            carried,
                        ),
                    )
                return
            throttle = state.throttle
            # FIFO fairness: spilled work of this function admits first.
            drain_queue(fname, now_abs)
            if throttle is None or throttle.try_admit(
                now_abs, in_flight_by_fn.get(fname, 0)
            ):
                record = execute(
                    request, position, now_abs, first_abs, attempts + 1, carried
                )
                if record is not None:
                    out.append(record)
            elif request.trigger in ASYNC_TRIGGERS:
                queue = queues.get(fname)
                if queue is None and overload.admission_queue_depth > 0:
                    queue = queues[fname] = AdmissionQueue(
                        overload.admission_queue_depth, overload.admission_max_age_s
                    )
                # depth 0 disables queueing entirely — never materialise a
                # queue (it would leak: drain-time pruning never sees it).
                if queue is None or not queue.push(QueuedInvocation(now_abs, position, request)):
                    out.append(
                        platform._overload_record(
                            fname,
                            outcome=InvocationOutcome.DROPPED,
                            submitted_at=now_abs,
                            finished_at=now_abs,
                            attempts=1,
                            admission_delay_s=0.0,
                            request_index=position,
                            error="queue-full",
                        )
                    )
            else:
                attempts += 1  # this attempt was 429'd
                response_s = platform._throttle_response_s(request.trigger)
                if breaker is not None:
                    # The breaker must see 429s: without them, throttled
                    # half-open probes would exhaust the probe budget with
                    # no verdict and wedge the breaker in HALF_OPEN.  The
                    # throttle code lets it ignore them while CLOSED.
                    heapq.heappush(
                        completions,
                        (now_abs + response_s, next(sequence), fname, "", False, _SIG_THROTTLE),
                    )
                delay = policy.next_delay(attempts, state.retry_stream)
                if delay is None:
                    finished_abs = now_abs + response_s
                    if finished_abs > last_finish:
                        last_finish = finished_abs
                    out.append(
                        terminal(
                            platform._overload_record(
                                fname,
                                outcome=InvocationOutcome.THROTTLED,
                                submitted_at=first_abs,
                                finished_at=finished_abs,
                                attempts=attempts,
                                admission_delay_s=now_abs - first_abs,
                                request_index=position,
                                error="throttled",
                            )
                        )
                    )
                else:
                    heapq.heappush(
                        retries,
                        (
                            now_rel + response_s + delay,
                            next(retry_sequence),
                            request,
                            position,
                            first_rel,
                            attempts,
                            carried,
                        ),
                    )

        def advance_internal() -> bool:
            """Process the earliest internal event (a REPLENISH pull).

            Only reached when the source has no request ready: either the
            next completion (with its queue drain) or the next due retry,
            whichever is earlier — completions first on ties, matching the
            ``<=`` pop of the main flow.  Returns False when the engine
            holds no internal work at all.
            """
            next_completion = completions[0][0] if completions else None
            next_retry = base + retries[0][0] if retries else None
            if next_completion is None and next_retry is None:
                return False
            if next_retry is not None and (
                next_completion is None or next_retry < next_completion
            ):
                now_rel, _, request, position, first_rel, attempts, carried = (
                    heapq.heappop(retries)
                )
                handle(request, position, now_rel, first_rel, attempts, carried)
            else:
                pop_completions(next_completion)
            return True

        def horizon_rel() -> float | None:
            """Earliest trace-relative time buffered work could emit a record.

            Due retries always can; completions can only when some admission
            queue is non-empty (the earliest completion is a conservative
            bound — it may belong to a queue-less function, costing at most
            an extra replenish round).
            """
            candidates = []
            if retries:
                candidates.append(retries[0][0])
            if completions and any(len(queue) for queue in queues.values()):
                candidates.append(completions[0][0] - base)
            return min(candidates) if candidates else None

        self._horizon_fn = horizon_rel
        try:
            request_iter = iter(requests)
            #: Arrival pulled from the source but not yet processed.
            pending_request: InvocationRequest | None = None
            exhausted = False
            while True:
                # Flush before pulling: the feedback contract guarantees a
                # source sees every resolved record before the next pull.
                if out:
                    yield from out
                    out.clear()
                if pending_request is None and not exhausted:
                    item = next(request_iter, None)
                    if item is None:
                        exhausted = True
                    elif item is REPLENISH:
                        if not advance_internal():
                            raise ConfigurationError(
                                "feedback request source asked the engine to "
                                "replenish, but no internal work is pending"
                            )
                        continue
                    else:
                        pending_request = item
                # A due retry precedes an arrival with the same timestamp:
                # the deterministic, function-independent tie-break.
                if retries and (
                    pending_request is None
                    or retries[0][0] <= pending_request.submitted_at
                ):
                    now_rel, _, request, position, first_rel, attempts, carried = (
                        heapq.heappop(retries)
                    )
                    handle(request, position, now_rel, first_rel, attempts, carried)
                elif pending_request is not None:
                    request = pending_request
                    pending_request = None
                    if request.submitted_at < last_submitted:
                        raise ConfigurationError(
                            "workload requests must be sorted by submission time "
                            f"({request.submitted_at:.6f} after {last_submitted:.6f})"
                        )
                    last_submitted = request.submitted_at
                    handle(
                        request,
                        next(position_iter),
                        request.submitted_at,
                        request.submitted_at,
                        0,
                    )
                elif exhausted:
                    break
            if out:
                yield from out
                out.clear()

            # Input exhausted: run the remaining completions to drain the
            # admission queues.  Progress is guaranteed — a completion always
            # pops, and a function with an empty in-flight set always admits
            # its queue head (every throttle allows concurrency 1).
            while completions:
                pop_completions(completions[0][0])
                if out:
                    yield from out
                    out.clear()

            if last_finish > platform.clock.now():
                platform.clock.advance_to(last_finish)
        finally:
            self._horizon_fn = None
            self.last_peak_in_flight = peak
            while completions:
                _, _, done_fname, container_id, _, _ = heapq.heappop(completions)
                if container_id:
                    platform._release_container(done_fname, container_id)

    def run(
        self,
        trace: WorkloadTrace | MergedWorkloadTrace | Iterable[InvocationRequest],
        keep_records: bool = True,
        observer=None,
    ) -> WorkloadResult:
        """Replay a whole trace and aggregate the outcome.

        For a :class:`~repro.workload.trace.WorkloadTrace`, every referenced
        function is validated up front, so an unknown name raises
        :class:`~repro.exceptions.FunctionNotFoundError` before any simulated
        time passes.  With ``keep_records=False`` the trace may also be a
        lazy request iterable (validated as it is consumed) and the replay
        aggregates in O(functions) memory.

        ``observer`` receives ``on_invocation`` per terminal record in
        stream order (resolution order under the overload model — the
        record list itself is still sorted back to arrival order), plus
        breaker-transition hooks from the controlled replay.
        """
        if observer is not None:
            self.observer = observer
        observer = self.observer
        platform = self.platform
        if (
            getattr(platform, "_columnar", False)
            and not getattr(platform, "_controlled_replay", False)
            and not platform.execute_kernels
        ):
            # Columnar fast path: same draws, same floats, flat loop
            # (repro.columnar.engine).  Controlled replays (overload/faults/
            # resilience) and kernel execution fall through to the scalar
            # loop — the pre-drawn blocks installed on the runtime states
            # keep those bit-identical too, via the stream shims.
            from ..columnar.engine import run_columnar

            return run_columnar(self, trace, keep_records, observer)
        if isinstance(trace, (WorkloadTrace, MergedWorkloadTrace)):
            for fname in trace.functions():
                self.platform.get_function(fname)
        wall_start = time.perf_counter()
        if keep_records:
            # Exact mode: materialise the records and aggregate post-hoc —
            # no per-record estimator work on the hot path.
            if observer is None:
                records = list(self.stream(trace))
            else:
                records = []
                dispatch = observer.on_invocation
                append = records.append
                for record in self.stream(trace):
                    dispatch(record)
                    append(record)
            if getattr(self.platform, "_controlled_replay", False):
                # Throttled/queued requests resolve out of arrival order;
                # restore it so serial and sharded record lists agree (the
                # sharded merge sorts by the same index).
                records.sort(key=attrgetter("request_index"))
            wall_clock_s = time.perf_counter() - wall_start
            span = 0.0
            if records:
                span = max(r.finished_at for r in records) - min(r.submitted_at for r in records)
            return WorkloadResult(
                provider=self.platform.provider,
                records=records,
                simulated_span_s=span,
                wall_clock_s=wall_clock_s,
                peak_in_flight=self.last_peak_in_flight,
            )
        accumulator = _ReplayAccumulator()
        fold = accumulator.add
        if observer is None:
            for record in self.stream(trace):
                fold(record)
        else:
            dispatch = observer.on_invocation
            for record in self.stream(trace):
                dispatch(record)
                fold(record)
        wall_clock_s = time.perf_counter() - wall_start
        return streaming_result(
            self.platform.provider,
            accumulator,
            wall_clock_s=wall_clock_s,
            peak_in_flight=self.last_peak_in_flight,
        )

    def _prune_pools(self) -> None:
        for state in self.platform._state.values():
            state.pool.prune()

    @staticmethod
    def _peak_in_flight(records: list[InvocationRecord]) -> int:
        """Maximum overlap of [admitted_at, finished_at) execution intervals.

        Retained as the reference computation: ``run`` tracks the same value
        online from the live completion heap.  Throttled and dropped
        requests never executed, so they carry no interval; a retried or
        queue-delayed request occupies capacity only from its *admitted*
        attempt (``admitted_at == submitted_at`` without overload).
        """
        if not records:
            return 0
        events: list[tuple[float, int]] = []
        for record in records:
            if not record.executed:
                continue
            events.append((record.admitted_at, 1))
            events.append((record.finished_at, -1))
        events.sort()
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak
