"""The event-queue workload engine.

This is the scheduling layer that turns the single-request simulator into a
trace-driven system.  ``invoke`` and ``invoke_batch`` advance the virtual
clock once per call, so a container is either free or reserved for a whole
batch.  The engine instead replays a :class:`~repro.workload.trace.WorkloadTrace`
through a **min-heap event queue** over the virtual clock:

* every request is an *arrival* event at its trace timestamp;
* simulating an invocation determines its finish time, which is pushed as a
  *completion* event onto the heap;
* before an arrival is scheduled, all completions up to that instant are
  popped, releasing their sandboxes.

A sandbox is therefore occupied exactly between its invocation's start and
finish, and warm reuse, cold starts, eviction and concurrency all *emerge
from the overlap structure* of the trace: two requests 50 ms apart hitting a
200 ms function need two sandboxes, while the same two requests 5 s apart
share one.  Occupancy is the pool's multiset
(:meth:`~repro.simulator.containers.ContainerPool.reserve` /
:meth:`~repro.simulator.containers.ContainerPool.release`): dispatching an
invocation takes a slot, popping its completion returns it, which carries
exactly the per-execution multiplicity Azure's shared function-app
instances need.

Two aggregation modes:

* ``run(trace)`` (default) materialises every
  :class:`~repro.faas.invocation.InvocationRecord` — exact percentiles,
  full drill-down, O(invocations) memory;
* ``run(trace, keep_records=False)`` streams records into per-function
  accumulators (counts, costs, Welford moments and mergeable reservoir percentile
  sketches from :mod:`repro.stats.streaming`) as they are produced — O(functions)
  memory, the mode for million-invocation traces.  ``trace`` may then be a
  lazy iterable of requests.

The engine is deterministic: the same platform seed and the same trace
produce identical schedules, cold-start counts and cost totals, in either
aggregation mode.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..config import Provider, StartType
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRecord, InvocationRequest
from ..stats.streaming import StreamingSummary
from ..stats.summary import DistributionSummary, summarize
from .trace import MergedWorkloadTrace, WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform

#: Evicted sandboxes are pruned from the pools every this many requests, so
#: the pool bookkeeping stays O(live sandboxes) instead of O(all ever made).
_PRUNE_INTERVAL = 1024


@dataclass(frozen=True)
class FunctionWorkloadSummary:
    """Per-function outcome of a workload replay."""

    function_name: str
    invocations: int
    cold_starts: int
    failures: int
    total_cost_usd: float
    client_time: DistributionSummary | None = None

    @property
    def cold_start_rate(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def to_row(self) -> dict:
        row = {
            "function": self.function_name,
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failures,
            "cost_usd": round(self.total_cost_usd, 8),
        }
        if self.client_time is not None:
            row["client_p50_ms"] = round(self.client_time.median * 1000.0, 2)
            row["client_p95_ms"] = round(self.client_time.percentiles.get(95.0, float("nan")) * 1000.0, 2)
        return row


class _FunctionAccumulator:
    """Streaming per-function aggregates (O(1) state per function).

    Mergeable: shard accumulators for the same function fold together with
    :meth:`merge` — counts and cost sums exactly, latency distributions via
    :meth:`repro.stats.streaming.StreamingSummary.merge` (exact when one
    side is empty, which is the per-function sharding case).
    """

    __slots__ = ("function_name", "invocations", "cold_starts", "failures", "total_cost_usd", "client_time")

    def __init__(self, function_name: str):
        self.function_name = function_name
        self.invocations = 0
        self.cold_starts = 0
        self.failures = 0
        self.total_cost_usd = 0.0
        self.client_time = StreamingSummary(key=function_name)

    def add(self, record: InvocationRecord) -> None:
        self.invocations += 1
        if record.start_type is StartType.COLD:
            self.cold_starts += 1
        if not record.success:
            self.failures += 1
        self.total_cost_usd += record.cost.total
        self.client_time.add(record.client_time_s)

    def merge(self, other: "_FunctionAccumulator") -> None:
        self.invocations += other.invocations
        self.cold_starts += other.cold_starts
        self.failures += other.failures
        self.total_cost_usd += other.total_cost_usd
        self.client_time.merge(other.client_time)

    def summary(self) -> FunctionWorkloadSummary:
        return FunctionWorkloadSummary(
            function_name=self.function_name,
            invocations=self.invocations,
            cold_starts=self.cold_starts,
            failures=self.failures,
            total_cost_usd=self.total_cost_usd,
            client_time=self.client_time.to_summary() if self.invocations else None,
        )


class _ReplayAccumulator:
    """Whole-replay streaming aggregates: span plus per-function state.

    The replay totals (invocations, cold starts, failures, cost) are summed
    from the per-function accumulators once at the end — only the span
    needs whole-replay tracking per record.  Float totals reduce in sorted
    function-name order, so a merge of per-shard accumulators
    (:meth:`merge`) produces byte-identical totals to a serial replay.
    """

    def __init__(self) -> None:
        self.first_submitted: float | None = None
        self.last_finished: float | None = None
        self.per_function: dict[str, _FunctionAccumulator] = {}

    def add(self, record: InvocationRecord) -> None:
        if self.first_submitted is None or record.submitted_at < self.first_submitted:
            self.first_submitted = record.submitted_at
        if self.last_finished is None or record.finished_at > self.last_finished:
            self.last_finished = record.finished_at
        accumulator = self.per_function.get(record.function_name)
        if accumulator is None:
            accumulator = self.per_function[record.function_name] = _FunctionAccumulator(
                record.function_name
            )
        accumulator.add(record)

    def merge(self, other: "_ReplayAccumulator") -> None:
        """Fold a shard's accumulator into this one (sharded replay merge)."""
        if other.first_submitted is not None and (
            self.first_submitted is None or other.first_submitted < self.first_submitted
        ):
            self.first_submitted = other.first_submitted
        if other.last_finished is not None and (
            self.last_finished is None or other.last_finished > self.last_finished
        ):
            self.last_finished = other.last_finished
        for fname, accumulator in other.per_function.items():
            mine = self.per_function.get(fname)
            if mine is None:
                self.per_function[fname] = accumulator
            else:
                mine.merge(accumulator)

    @property
    def span_s(self) -> float:
        if self.first_submitted is None or self.last_finished is None:
            return 0.0
        return self.last_finished - self.first_submitted

    def _ordered(self) -> list[_FunctionAccumulator]:
        return [self.per_function[fname] for fname in sorted(self.per_function)]

    @property
    def invocations(self) -> int:
        return sum(acc.invocations for acc in self.per_function.values())

    @property
    def cold_starts(self) -> int:
        return sum(acc.cold_starts for acc in self.per_function.values())

    @property
    def failures(self) -> int:
        return sum(acc.failures for acc in self.per_function.values())

    @property
    def total_cost_usd(self) -> float:
        # Sorted-name reduction: the float sum is independent of function
        # first-appearance order, hence identical for serial and merged
        # sharded replays.
        return sum(acc.total_cost_usd for acc in self._ordered())

    def summaries(self) -> dict[str, FunctionWorkloadSummary]:
        return {
            fname: self.per_function[fname].summary() for fname in sorted(self.per_function)
        }


@dataclass
class WorkloadResult:
    """Everything a workload replay produced.

    In record-keeping mode the aggregate properties are derived exactly from
    ``records``; in streaming-aggregation mode ``records`` is empty and the
    same properties read the pre-aggregated counters instead (with
    per-function latency distributions carried by reservoir estimates in
    ``streaming_summaries``).
    """

    provider: Provider
    records: list[InvocationRecord] = field(default_factory=list)
    #: Span of simulated time between first submission and last completion.
    simulated_span_s: float = 0.0
    #: Wall-clock seconds the replay took (simulator throughput measure).
    wall_clock_s: float = 0.0
    #: Largest number of invocations in flight at any instant.
    peak_in_flight: int = 0
    #: Aggregate counters (authoritative when ``records`` is empty).
    invocation_count: int = 0
    cold_start_total: int = 0
    failure_total: int = 0
    cost_usd_total: float = 0.0
    #: Per-function summaries from the streaming accumulators (streaming
    #: mode only; ``None`` when full records are available).
    streaming_summaries: dict[str, FunctionWorkloadSummary] | None = None

    @property
    def invocations(self) -> int:
        return len(self.records) if self.records else self.invocation_count

    @property
    def cold_start_count(self) -> int:
        if self.records:
            return sum(1 for record in self.records if record.start_type is StartType.COLD)
        return self.cold_start_total

    @property
    def cold_start_rate(self) -> float:
        invocations = self.invocations
        return self.cold_start_count / invocations if invocations else 0.0

    @property
    def failure_count(self) -> int:
        if self.records:
            return sum(1 for record in self.records if not record.success)
        return self.failure_total

    @property
    def total_cost_usd(self) -> float:
        if self.records:
            return sum(record.cost.total for record in self.records)
        return self.cost_usd_total

    @property
    def throughput_per_s(self) -> float:
        """Invocations simulated per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.invocations / self.wall_clock_s

    def per_function(self) -> dict[str, FunctionWorkloadSummary]:
        """Aggregate the records into per-function summaries.

        Exact (with confidence intervals) when records were kept; streaming
        reservoir estimates otherwise.
        """
        if not self.records:
            return dict(self.streaming_summaries or {})
        grouped: dict[str, list[InvocationRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.function_name, []).append(record)
        summaries = {}
        for fname in sorted(grouped):
            records = grouped[fname]
            summaries[fname] = FunctionWorkloadSummary(
                function_name=fname,
                invocations=len(records),
                cold_starts=sum(1 for r in records if r.start_type is StartType.COLD),
                failures=sum(1 for r in records if not r.success),
                total_cost_usd=sum(r.cost.total for r in records),
                client_time=summarize([r.client_time_s for r in records]),
            )
        return summaries

    def to_rows(self) -> list[dict]:
        """Per-function table rows (for :func:`repro.reporting.tables.format_table`)."""
        return [summary.to_row() for summary in self.per_function().values()]

    def summary_row(self) -> dict:
        """One aggregate row describing the whole replay."""
        return {
            "provider": self.provider.value,
            "invocations": self.invocations,
            "cold_starts": self.cold_start_count,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failure_count,
            "peak_in_flight": self.peak_in_flight,
            "cost_usd": round(self.total_cost_usd, 8),
            "simulated_span_s": round(self.simulated_span_s, 3),
            "throughput_inv_per_s": round(self.throughput_per_s, 1),
        }


def streaming_result(
    provider: Provider,
    accumulator: _ReplayAccumulator,
    wall_clock_s: float,
    peak_in_flight: int,
) -> WorkloadResult:
    """Build the streaming-mode :class:`WorkloadResult` from an accumulator.

    Shared by the serial engine and the sharded-replay merge
    (:mod:`repro.parallel`), so both paths reduce the accumulator with the
    same code — and therefore the same float-summation order.
    """
    return WorkloadResult(
        provider=provider,
        records=[],
        simulated_span_s=accumulator.span_s,
        wall_clock_s=wall_clock_s,
        peak_in_flight=peak_in_flight,
        invocation_count=accumulator.invocations,
        cold_start_total=accumulator.cold_starts,
        failure_total=accumulator.failures,
        cost_usd_total=accumulator.total_cost_usd,
        streaming_summaries=accumulator.summaries(),
    )


class WorkloadEngine:
    """Replays invocation streams against one simulated platform."""

    def __init__(self, platform: "SimulatedPlatform"):
        self.platform = platform
        #: Peak concurrency observed by the most recent stream() pass.
        self.last_peak_in_flight = 0

    def stream(self, requests: Iterable[InvocationRequest]) -> Iterator[InvocationRecord]:
        """Replay ``requests`` lazily, yielding one record per request.

        Requests must arrive in non-decreasing ``submitted_at`` order
        (:class:`~repro.workload.trace.WorkloadTrace` guarantees this).
        Timestamps are relative: request time 0 is the platform clock's
        position when the stream starts.  When the stream is exhausted the
        clock is advanced to the last completion, so a subsequent
        ``warm_container_count`` or ``invoke`` sees the post-workload state.

        Sandbox occupancy lives in the pools' reservation multisets: each
        dispatched invocation holds one slot until its completion event is
        popped (or, if the stream is abandoned, until the generator is
        closed — outstanding slots are released on the way out).
        """
        platform = self.platform
        base = platform.clock.now()
        sequence = itertools.count()
        # Completion events: (finish_time, tie-break, function, container_id).
        completions: list[tuple[float, int, str, str]] = []
        # In-flight executions per function: the concurrency the invocation
        # model sees.  Scoped per function — not the whole-platform heap
        # size — so one function's burst-failure behaviour depends only on
        # its own overlap structure (explicit per-function isolation; the
        # invariant sharded replay relies on).
        in_flight_by_fn: dict[str, int] = {}
        last_submitted = 0.0
        last_finish = base
        processed = 0
        peak = 0
        self.last_peak_in_flight = 0

        try:
            for request in requests:
                if request.submitted_at < last_submitted:
                    raise ConfigurationError(
                        "workload requests must be sorted by submission time "
                        f"({request.submitted_at:.6f} after {last_submitted:.6f})"
                    )
                last_submitted = request.submitted_at
                now = base + request.submitted_at

                # Release every sandbox whose invocation completed by `now`.
                while completions and completions[0][0] <= now:
                    _, _, done_fname, container_id = heapq.heappop(completions)
                    platform._release_container(done_fname, container_id)
                    in_flight_by_fn[done_fname] -= 1

                platform.clock.advance_to(now)
                in_flight = len(completions)
                fname = request.function_name
                fn_in_flight = in_flight_by_fn.get(fname, 0)
                record = platform._simulate_invocation(
                    fname,
                    request.payload,
                    request.trigger,
                    request.payload_bytes,
                    concurrency=fn_in_flight + 1,
                    start_at=now,
                )
                in_flight_by_fn[fname] = fn_in_flight + 1
                heapq.heappush(
                    completions,
                    (record.finished_at, next(sequence), request.function_name, record.container_id),
                )
                if in_flight + 1 > peak:
                    peak = in_flight + 1
                if record.finished_at > last_finish:
                    last_finish = record.finished_at

                processed += 1
                if processed % _PRUNE_INTERVAL == 0:
                    self._prune_pools()
                yield record

            if last_finish > platform.clock.now():
                platform.clock.advance_to(last_finish)
        finally:
            self.last_peak_in_flight = peak
            # Return any outstanding occupancy slots (normal exhaustion: all
            # in-flight work has finished by `last_finish`; early abandonment:
            # the sandboxes must not stay reserved forever).
            while completions:
                _, _, done_fname, container_id = heapq.heappop(completions)
                platform._release_container(done_fname, container_id)

    def run(
        self,
        trace: WorkloadTrace | MergedWorkloadTrace | Iterable[InvocationRequest],
        keep_records: bool = True,
    ) -> WorkloadResult:
        """Replay a whole trace and aggregate the outcome.

        For a :class:`~repro.workload.trace.WorkloadTrace`, every referenced
        function is validated up front, so an unknown name raises
        :class:`~repro.exceptions.FunctionNotFoundError` before any simulated
        time passes.  With ``keep_records=False`` the trace may also be a
        lazy request iterable (validated as it is consumed) and the replay
        aggregates in O(functions) memory.
        """
        if isinstance(trace, (WorkloadTrace, MergedWorkloadTrace)):
            for fname in trace.functions():
                self.platform.get_function(fname)
        wall_start = time.perf_counter()
        if keep_records:
            # Exact mode: materialise the records and aggregate post-hoc —
            # no per-record estimator work on the hot path.
            records = list(self.stream(trace))
            wall_clock_s = time.perf_counter() - wall_start
            span = 0.0
            if records:
                span = max(r.finished_at for r in records) - min(r.submitted_at for r in records)
            return WorkloadResult(
                provider=self.platform.provider,
                records=records,
                simulated_span_s=span,
                wall_clock_s=wall_clock_s,
                peak_in_flight=self.last_peak_in_flight,
            )
        accumulator = _ReplayAccumulator()
        for record in self.stream(trace):
            accumulator.add(record)
        wall_clock_s = time.perf_counter() - wall_start
        return streaming_result(
            self.platform.provider,
            accumulator,
            wall_clock_s=wall_clock_s,
            peak_in_flight=self.last_peak_in_flight,
        )

    def _prune_pools(self) -> None:
        for state in self.platform._state.values():
            state.pool.prune()

    @staticmethod
    def _peak_in_flight(records: list[InvocationRecord]) -> int:
        """Maximum overlap of [submitted_at, finished_at) intervals.

        Retained as the reference computation: ``run`` tracks the same value
        online from the live completion heap.
        """
        if not records:
            return 0
        events: list[tuple[float, int]] = []
        for record in records:
            events.append((record.submitted_at, 1))
            events.append((record.finished_at, -1))
        events.sort()
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak
