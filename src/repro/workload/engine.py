"""The event-queue workload engine.

This is the scheduling layer that turns the single-request simulator into a
trace-driven system.  ``invoke`` and ``invoke_batch`` advance the virtual
clock once per call, so a container is either free or reserved for a whole
batch.  The engine instead replays a :class:`~repro.workload.trace.WorkloadTrace`
through a **min-heap event queue** over the virtual clock:

* every request is an *arrival* event at its trace timestamp;
* simulating an invocation determines its finish time, which is pushed as a
  *completion* event onto the heap;
* before an arrival is scheduled, all completions up to that instant are
  popped, releasing their sandboxes.

A sandbox is therefore occupied exactly between its invocation's start and
finish, and warm reuse, cold starts, eviction and concurrency all *emerge
from the overlap structure* of the trace: two requests 50 ms apart hitting a
200 ms function need two sandboxes, while the same two requests 5 s apart
share one.  Azure's function-app instance sharing is preserved — the busy
set carries one entry per in-flight execution, which is exactly the
multiplicity :meth:`AzureFunctionsSimulator._acquire_container` counts.

The engine is deterministic: the same platform seed and the same trace
produce identical schedules, cold-start counts and cost totals.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..config import Provider, StartType
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRecord, InvocationRequest
from ..stats.summary import DistributionSummary, summarize
from .trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..simulator.platform_sim import SimulatedPlatform

#: Evicted sandboxes are pruned from the pools every this many requests, so
#: warm-list scans stay O(pool size) instead of O(all containers ever made).
_PRUNE_INTERVAL = 1024


@dataclass(frozen=True)
class FunctionWorkloadSummary:
    """Per-function outcome of a workload replay."""

    function_name: str
    invocations: int
    cold_starts: int
    failures: int
    total_cost_usd: float
    client_time: DistributionSummary | None = None

    @property
    def cold_start_rate(self) -> float:
        return self.cold_starts / self.invocations if self.invocations else 0.0

    def to_row(self) -> dict:
        row = {
            "function": self.function_name,
            "invocations": self.invocations,
            "cold_starts": self.cold_starts,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failures,
            "cost_usd": round(self.total_cost_usd, 8),
        }
        if self.client_time is not None:
            row["client_p50_ms"] = round(self.client_time.median * 1000.0, 2)
            row["client_p95_ms"] = round(self.client_time.percentiles.get(95.0, float("nan")) * 1000.0, 2)
        return row


@dataclass
class WorkloadResult:
    """Everything a workload replay produced."""

    provider: Provider
    records: list[InvocationRecord] = field(default_factory=list)
    #: Span of simulated time between first submission and last completion.
    simulated_span_s: float = 0.0
    #: Wall-clock seconds the replay took (simulator throughput measure).
    wall_clock_s: float = 0.0
    #: Largest number of invocations in flight at any instant.
    peak_in_flight: int = 0

    @property
    def invocations(self) -> int:
        return len(self.records)

    @property
    def cold_start_count(self) -> int:
        return sum(1 for record in self.records if record.start_type is StartType.COLD)

    @property
    def cold_start_rate(self) -> float:
        return self.cold_start_count / self.invocations if self.records else 0.0

    @property
    def failure_count(self) -> int:
        return sum(1 for record in self.records if not record.success)

    @property
    def total_cost_usd(self) -> float:
        return sum(record.cost.total for record in self.records)

    @property
    def throughput_per_s(self) -> float:
        """Invocations simulated per wall-clock second."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.invocations / self.wall_clock_s

    def per_function(self) -> dict[str, FunctionWorkloadSummary]:
        """Aggregate the records into per-function summaries."""
        grouped: dict[str, list[InvocationRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.function_name, []).append(record)
        summaries = {}
        for fname in sorted(grouped):
            records = grouped[fname]
            summaries[fname] = FunctionWorkloadSummary(
                function_name=fname,
                invocations=len(records),
                cold_starts=sum(1 for r in records if r.start_type is StartType.COLD),
                failures=sum(1 for r in records if not r.success),
                total_cost_usd=sum(r.cost.total for r in records),
                client_time=summarize([r.client_time_s for r in records]),
            )
        return summaries

    def to_rows(self) -> list[dict]:
        """Per-function table rows (for :func:`repro.reporting.tables.format_table`)."""
        return [summary.to_row() for summary in self.per_function().values()]

    def summary_row(self) -> dict:
        """One aggregate row describing the whole replay."""
        return {
            "provider": self.provider.value,
            "invocations": self.invocations,
            "cold_starts": self.cold_start_count,
            "cold_rate_pct": round(100.0 * self.cold_start_rate, 2),
            "failures": self.failure_count,
            "peak_in_flight": self.peak_in_flight,
            "cost_usd": round(self.total_cost_usd, 8),
            "simulated_span_s": round(self.simulated_span_s, 3),
            "throughput_inv_per_s": round(self.throughput_per_s, 1),
        }


class WorkloadEngine:
    """Replays invocation streams against one simulated platform."""

    def __init__(self, platform: "SimulatedPlatform"):
        self.platform = platform

    def stream(self, requests: Iterable[InvocationRequest]) -> Iterator[InvocationRecord]:
        """Replay ``requests`` lazily, yielding one record per request.

        Requests must arrive in non-decreasing ``submitted_at`` order
        (:class:`~repro.workload.trace.WorkloadTrace` guarantees this).
        Timestamps are relative: request time 0 is the platform clock's
        position when the stream starts.  When the stream is exhausted the
        clock is advanced to the last completion, so a subsequent
        ``warm_container_count`` or ``invoke`` sees the post-workload state.
        """
        platform = self.platform
        base = platform.clock.now()
        sequence = itertools.count()
        # Completion events: (finish_time, tie-break, container_id).
        completions: list[tuple[float, int, str]] = []
        # In-flight executions per container (Azure packs several per app
        # instance, so this is a multiset rather than a set).
        busy: dict[str, int] = {}
        last_submitted = 0.0
        last_finish = base
        processed = 0

        for request in requests:
            if request.submitted_at < last_submitted:
                raise ConfigurationError(
                    "workload requests must be sorted by submission time "
                    f"({request.submitted_at:.6f} after {last_submitted:.6f})"
                )
            last_submitted = request.submitted_at
            now = base + request.submitted_at

            # Release every sandbox whose invocation completed by `now`.
            while completions and completions[0][0] <= now:
                _, _, container_id = heapq.heappop(completions)
                remaining = busy.get(container_id, 0) - 1
                if remaining > 0:
                    busy[container_id] = remaining
                else:
                    busy.pop(container_id, None)

            platform.clock.advance_to(now)
            in_flight = len(completions)
            reserved = [cid for cid, count in busy.items() for _ in range(count)]
            record = platform._simulate_invocation(
                request.function_name,
                request.payload,
                request.trigger,
                request.payload_bytes,
                concurrency=in_flight + 1,
                start_at=now,
                reserved=reserved,
            )
            heapq.heappush(completions, (record.finished_at, next(sequence), record.container_id))
            busy[record.container_id] = busy.get(record.container_id, 0) + 1
            last_finish = max(last_finish, record.finished_at)

            processed += 1
            if processed % _PRUNE_INTERVAL == 0:
                self._prune_pools()
            yield record

        if last_finish > platform.clock.now():
            platform.clock.advance_to(last_finish)

    def run(self, trace: WorkloadTrace) -> WorkloadResult:
        """Replay a whole trace and aggregate the outcome.

        Validates every referenced function up front, so an unknown name
        raises :class:`~repro.exceptions.FunctionNotFoundError` before any
        simulated time passes.
        """
        for fname in trace.functions():
            self.platform.get_function(fname)
        wall_start = time.perf_counter()
        records = list(self.stream(trace))
        wall_clock_s = time.perf_counter() - wall_start
        span = 0.0
        if records:
            span = max(r.finished_at for r in records) - min(r.submitted_at for r in records)
        result = WorkloadResult(
            provider=self.platform.provider,
            records=records,
            simulated_span_s=span,
            wall_clock_s=wall_clock_s,
        )
        result.peak_in_flight = self._peak_in_flight(records)
        return result

    def _prune_pools(self) -> None:
        for state in self.platform._state.values():
            state.pool.prune()

    @staticmethod
    def _peak_in_flight(records: list[InvocationRecord]) -> int:
        """Maximum overlap of [submitted_at, finished_at) intervals."""
        if not records:
            return 0
        events: list[tuple[float, int]] = []
        for record in records:
            events.append((record.submitted_at, 1))
            events.append((record.finished_at, -1))
        events.sort()
        peak = current = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak
