"""Arrival processes: *when* do invocations hit the platform?

The paper's experiments drive providers with regular batches, but real FaaS
traffic is anything but regular — cold-start rates, container eviction and
cost all depend on the inter-arrival structure of the request stream.  This
module provides the classic arrival processes used to synthesize workload
traces:

* :class:`ConstantRateArrivals` — deterministic, evenly spaced requests
  (closed-loop load generators, health checks, timers);
* :class:`PoissonArrivals` — memoryless open-loop traffic, the standard
  model for many independent users;
* :class:`BurstyArrivals` — a two-state ON/OFF (interrupted Poisson)
  process producing request bursts separated by quiet periods, the worst
  case for cold starts;
* :class:`DiurnalArrivals` — a non-homogeneous Poisson process whose rate
  follows a sinusoidal day/night curve, sampled by thinning.

Every process generates *relative* arrival offsets in ``[0, duration_s)``
from a caller-supplied :class:`numpy.random.Generator`, so traces derived
from the same seed are reproducible (see :mod:`repro.utils.rng`).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..exceptions import ConfigurationError


class ArrivalProcess(abc.ABC):
    """Generates the arrival timestamps of an invocation stream."""

    @abc.abstractmethod
    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        """Return sorted arrival offsets (seconds) within ``[0, duration_s)``."""

    @property
    def name(self) -> str:
        """Short human-readable identifier used in scenario descriptions."""
        return type(self).__name__

    def expected_invocations(self, duration_s: float) -> float:
        """Expected number of arrivals in ``[0, duration_s)``.

        The shard planner's cost model (:mod:`repro.parallel`) uses this to
        load-balance scenario traffic across workers without synthesizing
        the trace first.  Subclasses with a known mean rate override it; the
        base fallback assumes one arrival per second, which only degrades
        balance, never correctness.
        """
        return self._validate_duration(duration_s)

    @staticmethod
    def _validate_duration(duration_s: float) -> float:
        if duration_s <= 0:
            raise ConfigurationError("trace duration must be positive")
        return float(duration_s)


class ConstantRateArrivals(ArrivalProcess):
    """Deterministic arrivals spaced exactly ``1 / rate`` seconds apart."""

    def __init__(self, rate_per_s: float, phase_s: float = 0.0):
        if rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if phase_s < 0:
            raise ConfigurationError("phase must be non-negative")
        self.rate_per_s = float(rate_per_s)
        self.phase_s = float(phase_s)

    def expected_invocations(self, duration_s: float) -> float:
        return self.rate_per_s * self._validate_duration(duration_s)

    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = self._validate_duration(duration_s)
        interval = 1.0 / self.rate_per_s
        start = self.phase_s % interval
        count = int(math.ceil((duration_s - start) / interval)) if start < duration_s else 0
        arrivals = start + interval * np.arange(max(0, count), dtype=float)
        return arrivals[arrivals < duration_s]


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: exponential inter-arrival times."""

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate_per_s = float(rate_per_s)

    def expected_invocations(self, duration_s: float) -> float:
        return self.rate_per_s * self._validate_duration(duration_s)

    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = self._validate_duration(duration_s)
        arrivals: list[np.ndarray] = []
        t = 0.0
        # Draw inter-arrival gaps in blocks sized by the expected count; the
        # loop almost always terminates after one or two iterations.
        expected = max(16, int(self.rate_per_s * duration_s * 1.1))
        while t < duration_s:
            gaps = rng.exponential(1.0 / self.rate_per_s, size=expected)
            block = t + np.cumsum(gaps)
            arrivals.append(block)
            t = float(block[-1])
        merged = np.concatenate(arrivals)
        return merged[merged < duration_s]


class BurstyArrivals(ArrivalProcess):
    """ON/OFF (interrupted Poisson) process producing bursts of requests.

    The source alternates between an ON state, during which requests arrive
    as a Poisson process at ``on_rate_per_s``, and an OFF state with a much
    lower (by default zero) ``off_rate_per_s``.  State holding times are
    exponential with means ``mean_on_s`` and ``mean_off_s``.
    """

    def __init__(
        self,
        on_rate_per_s: float,
        mean_on_s: float,
        mean_off_s: float,
        off_rate_per_s: float = 0.0,
    ):
        if on_rate_per_s <= 0:
            raise ConfigurationError("ON-state arrival rate must be positive")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("ON/OFF holding times must be positive")
        if off_rate_per_s < 0:
            raise ConfigurationError("OFF-state arrival rate must be non-negative")
        self.on_rate_per_s = float(on_rate_per_s)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.off_rate_per_s = float(off_rate_per_s)

    def expected_invocations(self, duration_s: float) -> float:
        duration_s = self._validate_duration(duration_s)
        cycle = self.mean_on_s + self.mean_off_s
        mean_rate = (
            self.on_rate_per_s * self.mean_on_s + self.off_rate_per_s * self.mean_off_s
        ) / cycle
        return mean_rate * duration_s

    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = self._validate_duration(duration_s)
        arrivals: list[float] = []
        t = 0.0
        state_on = True
        while t < duration_s:
            mean = self.mean_on_s if state_on else self.mean_off_s
            rate = self.on_rate_per_s if state_on else self.off_rate_per_s
            hold = float(rng.exponential(mean))
            end = min(duration_s, t + hold)
            if rate > 0:
                cursor = t + float(rng.exponential(1.0 / rate))
                while cursor < end:
                    arrivals.append(cursor)
                    cursor += float(rng.exponential(1.0 / rate))
            t = end
            state_on = not state_on
        return np.asarray(arrivals, dtype=float)


class DiurnalArrivals(ArrivalProcess):
    """Non-homogeneous Poisson process with a sinusoidal day/night cycle.

    The instantaneous rate is::

        rate(t) = mean_rate_per_s * (1 + amplitude * sin(2*pi*(t + phase_s) / period_s))

    sampled exactly with Lewis & Shedler thinning against the peak rate.
    ``amplitude`` in ``[0, 1]`` controls how deep the night-time trough is
    (1.0 means traffic dies out completely at the trough).
    """

    def __init__(
        self,
        mean_rate_per_s: float,
        amplitude: float = 0.8,
        period_s: float = 86_400.0,
        phase_s: float = 0.0,
    ):
        if mean_rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError("diurnal amplitude must lie in [0, 1]")
        if period_s <= 0:
            raise ConfigurationError("diurnal period must be positive")
        self.mean_rate_per_s = float(mean_rate_per_s)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_s = float(phase_s)

    def expected_invocations(self, duration_s: float) -> float:
        # The sinusoid integrates to ~zero over whole periods; the mean rate
        # is an adequate cost-model estimate for partial ones.
        return self.mean_rate_per_s * self._validate_duration(duration_s)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at offset ``t`` seconds."""
        cycle = math.sin(2.0 * math.pi * (t + self.phase_s) / self.period_s)
        return self.mean_rate_per_s * (1.0 + self.amplitude * cycle)

    def generate(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = self._validate_duration(duration_s)
        peak = self.mean_rate_per_s * (1.0 + self.amplitude)
        arrivals: list[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= duration_s:
                break
            if rng.random() * peak <= self.rate_at(t):
                arrivals.append(t)
        return np.asarray(arrivals, dtype=float)
