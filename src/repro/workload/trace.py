"""Workload traces: timestamped invocation requests.

A :class:`WorkloadTrace` is an immutable, time-sorted sequence of
:class:`~repro.faas.invocation.InvocationRequest` objects.  Traces can be

* **synthesized** from an :class:`~repro.workload.arrivals.ArrivalProcess`
  (``WorkloadTrace.synthesize``),
* **merged** from several per-function traces into one mixed stream
  (``WorkloadTrace.merge``), and
* **serialised** to / loaded from a small JSON format
  (``to_json`` / ``from_json``), so real provider traces (e.g. the Azure
  Functions production trace) can be converted and replayed offline.

Timestamps (``submitted_at``) are *relative to the start of the trace*; the
engine offsets them by the platform clock when the trace is replayed.
"""

from __future__ import annotations

import heapq
import json
from operator import attrgetter
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from ..config import TriggerType
from ..exceptions import ConfigurationError
from ..faas.invocation import InvocationRequest
from ..utils.io import atomic_write_text
from .arrivals import ArrivalProcess

#: Version tag written into serialised traces.
TRACE_FORMAT_VERSION = 1


class WorkloadTrace:
    """A time-sorted sequence of invocation requests."""

    def __init__(self, requests: Iterable[InvocationRequest]):
        items = list(requests)
        for request in items:
            if request.submitted_at < 0:
                raise ConfigurationError("trace timestamps must be non-negative")
        # Stable sort keeps the original order of simultaneous requests,
        # which keeps replay deterministic for identical timestamps.
        items.sort(key=lambda r: r.submitted_at)
        self._requests: tuple[InvocationRequest, ...] = tuple(items)

    # ------------------------------------------------------------ properties
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[InvocationRequest]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> InvocationRequest:
        return self._requests[index]

    @property
    def duration_s(self) -> float:
        """Offset of the last request (0 for an empty trace)."""
        return self._requests[-1].submitted_at if self._requests else 0.0

    def functions(self) -> list[str]:
        """Sorted names of the functions the trace invokes."""
        return sorted({request.function_name for request in self._requests})

    def mean_rate_per_s(self) -> float:
        """Mean arrival rate over the *observed* span (first to last arrival).

        Computed from the inter-arrival gaps, so a late first arrival (e.g.
        a diurnal trace starting in its trough) does not skew the rate.
        Traces with fewer than two requests have no observable rate => 0.
        """
        if len(self._requests) < 2:
            return 0.0
        span = self._requests[-1].submitted_at - self._requests[0].submitted_at
        if span <= 0:
            return 0.0
        return (len(self._requests) - 1) / span

    def first_submitted_at(self) -> float:
        """Timestamp of the earliest request (0 for an empty trace)."""
        return self._requests[0].submitted_at if self._requests else 0.0

    # ---------------------------------------------------------- construction
    @classmethod
    def synthesize(
        cls,
        function_name: str,
        process: ArrivalProcess,
        duration_s: float,
        rng: np.random.Generator | int = 0,
        payload: Mapping[str, Any] | None = None,
        payload_bytes: int | None = None,
        trigger: TriggerType = TriggerType.HTTP,
    ) -> "WorkloadTrace":
        """Generate a single-function trace from an arrival process."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(int(rng))
        offsets = process.generate(duration_s, rng)
        return cls(
            InvocationRequest(
                function_name=function_name,
                payload=dict(payload or {}),
                payload_bytes=payload_bytes,
                trigger=trigger,
                submitted_at=float(offset),
            )
            for offset in offsets
        )

    @classmethod
    def merge(cls, *traces: "WorkloadTrace | MergedWorkloadTrace") -> "MergedWorkloadTrace":
        """Interleave several traces into one time-sorted stream — lazily.

        Returns a :class:`MergedWorkloadTrace`: a re-iterable k-way
        ``heapq.merge`` view over the (already time-sorted) inputs.  Nothing
        is materialised, so merged traces compose with the streaming
        ``keep_records=False`` replay path in O(k) memory; ``heapq.merge``
        is stable, so simultaneous requests keep the order of the input
        traces — bit-identical to the old concatenate-and-stable-sort
        behaviour.
        """
        return MergedWorkloadTrace(*traces)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TRACE_FORMAT_VERSION,
            "requests": [
                {
                    "function": request.function_name,
                    "submitted_at": request.submitted_at,
                    "payload": dict(request.payload),
                    # Omitted when None: "measure the encoded payload".
                    **(
                        {"payload_bytes": request.payload_bytes}
                        if request.payload_bytes is not None
                        else {}
                    ),
                    "trigger": request.trigger.value,
                }
                for request in self._requests
            ],
        }

    def to_json(self, path: str | Path | None = None, indent: int | None = None) -> str:
        """Serialise the trace; optionally write it to ``path`` (atomically)."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            atomic_write_text(Path(path), text)
        return text

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadTrace":
        version = data.get("version", TRACE_FORMAT_VERSION)
        if version != TRACE_FORMAT_VERSION:
            raise ConfigurationError(f"unsupported trace format version {version!r}")
        entries = data.get("requests")
        if not isinstance(entries, list):
            raise ConfigurationError("trace JSON must contain a 'requests' list")
        requests = []
        for entry in entries:
            if "function" not in entry:
                raise ConfigurationError("every trace entry needs a 'function' name")
            raw_bytes = entry.get("payload_bytes")
            requests.append(
                InvocationRequest(
                    function_name=str(entry["function"]),
                    payload=dict(entry.get("payload", {})),
                    payload_bytes=None if raw_bytes is None else int(raw_bytes),
                    trigger=TriggerType(entry.get("trigger", TriggerType.HTTP.value)),
                    submitted_at=float(entry.get("submitted_at", 0.0)),
                )
            )
        return cls(requests)

    @classmethod
    def from_json(cls, source: str | Path) -> "WorkloadTrace":
        """Load a trace from a JSON string or a file path."""
        if isinstance(source, Path) or (isinstance(source, str) and not source.lstrip().startswith("{")):
            text = Path(source).read_text(encoding="utf-8")
        else:
            text = source
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WorkloadTrace({len(self)} requests, {len(self.functions())} functions, "
            f"{self.duration_s:.1f}s)"
        )


class MergedWorkloadTrace:
    """A lazy, re-iterable k-way merge of time-sorted traces.

    Produced by :meth:`WorkloadTrace.merge`.  Iteration runs a
    ``heapq.merge`` over the component traces, so the merged stream is
    never materialised — O(k) live state for k components, which is what
    lets multi-tenant scenarios feed the streaming (``keep_records=False``)
    replay path at million-invocation scale.  Aggregate properties
    (``__len__``, ``duration_s``, ``functions``) are computed from the
    components without expanding the stream; only the serialisation helpers
    (:meth:`materialize`, :meth:`to_dict`, :meth:`to_json`) build the full
    request list.
    """

    def __init__(self, *sources: "WorkloadTrace | MergedWorkloadTrace"):
        for source in sources:
            if not isinstance(source, (WorkloadTrace, MergedWorkloadTrace)):
                raise ConfigurationError(
                    "WorkloadTrace.merge only accepts traces (sorted-order guarantee); "
                    f"got {type(source).__name__}"
                )
        self._sources: tuple[WorkloadTrace | MergedWorkloadTrace, ...] = tuple(sources)

    def __iter__(self) -> Iterator[InvocationRequest]:
        # heapq.merge is stable: simultaneous requests keep source order.
        return heapq.merge(*self._sources, key=attrgetter("submitted_at"))

    def __len__(self) -> int:
        return sum(len(source) for source in self._sources)

    @property
    def duration_s(self) -> float:
        """Offset of the last request (0 for an empty merge)."""
        durations = [source.duration_s for source in self._sources if len(source)]
        return max(durations) if durations else 0.0

    def functions(self) -> list[str]:
        """Sorted names of the functions the merged stream invokes."""
        names: set[str] = set()
        for source in self._sources:
            names.update(source.functions())
        return sorted(names)

    def mean_rate_per_s(self) -> float:
        """Mean arrival rate over the observed span, as in :class:`WorkloadTrace`."""
        total = len(self)
        if total < 2:
            return 0.0
        span = self.duration_s - self.first_submitted_at()
        if span <= 0:
            return 0.0
        return (total - 1) / span

    def first_submitted_at(self) -> float:
        """Timestamp of the earliest request (0 for an empty merge)."""
        firsts = [source.first_submitted_at() for source in self._sources if len(source)]
        return min(firsts) if firsts else 0.0

    # --------------------------------------------------------- serialisation
    def materialize(self) -> WorkloadTrace:
        """Expand the merge into a plain (materialised) :class:`WorkloadTrace`."""
        return WorkloadTrace(self)

    def to_dict(self) -> dict[str, Any]:
        return self.materialize().to_dict()

    def to_json(self, path: str | Path | None = None, indent: int | None = None) -> str:
        return self.materialize().to_json(path, indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"MergedWorkloadTrace({len(self._sources)} sources, {len(self)} requests, "
            f"{self.duration_s:.1f}s)"
        )
