"""Figure 7: container-eviction curves and the D_warm = D_init * 2^-p model."""

from __future__ import annotations

from conftest import run_once

from repro.config import Language, Provider
from repro.experiments.eviction_model import EvictionModelExperiment
from repro.reporting.figures import figure7_eviction_series
from repro.reporting.tables import format_table


def test_figure7_container_eviction_model(benchmark, experiment_config, simulation_config):
    experiment = EvictionModelExperiment(config=experiment_config, simulation=simulation_config)
    result = run_once(
        benchmark,
        lambda: experiment.run(
            provider=Provider.AWS,
            d_init_values=(8, 12, 20),
            memory_values=(128, 1536),
            languages=(Language.PYTHON, Language.NODEJS),
            code_sizes_mb=(0.008, 250.0),
            function_times_s=(1.0, 10.0),
        ),
    )
    rows = figure7_eviction_series(result)
    print("\n" + format_table(rows[:24]))
    model = result.model
    assert model is not None
    print(f"\nfitted period = {model.period_s:.0f} s, R^2 = {model.r_squared:.4f}")

    # The fitted eviction period is the paper's 380 seconds and the analytical
    # model explains the observations with R^2 > 0.99.
    assert model.period_s == 380.0
    assert model.r_squared > 0.99

    # Model predictions track the observed counts within one container for
    # every scenario (Figures 7a-7f).
    for row in rows:
        assert abs(row["warm_observed"] - row["warm_predicted"]) <= 1.0

    # The half-life behaviour: after one period about half of the containers
    # survive, after two periods about a quarter.
    one_period = [row for row in rows if row["periods"] == 1 and row["d_init"] == 20]
    two_periods = [row for row in rows if row["periods"] == 2 and row["d_init"] == 20]
    assert all(row["warm_observed"] == 10 for row in one_period)
    assert all(row["warm_observed"] == 5 for row in two_periods)
