"""Table 2: comparison of commercial FaaS providers' policies and limits."""

from __future__ import annotations

from conftest import run_once

from repro.reporting.tables import format_table, table2_platform_limits


def test_table2_platform_limits(benchmark):
    rows = run_once(benchmark, table2_platform_limits)
    print("\n" + format_table(rows))

    by_provider = {row["policy"]: row for row in rows}
    assert set(by_provider) == {"AWS Lambda", "Azure Functions", "Google Cloud Functions"}
    # Time limits: 15 min (AWS) > 10 min (Azure consumption) > 9 min (GCP).
    assert by_provider["AWS Lambda"]["time_limit_min"] == 15.0
    assert by_provider["Azure Functions"]["time_limit_min"] == 10.0
    assert by_provider["Google Cloud Functions"]["time_limit_min"] == 9.0
    # Azure is the only provider with dynamic memory allocation.
    assert "Dynamic" in by_provider["Azure Functions"]["memory_allocation"]
    assert "Static" in by_provider["AWS Lambda"]["memory_allocation"]
    # Deployment limits: AWS 250 MB, GCP 100 MB.
    assert by_provider["AWS Lambda"]["deployment_limit_mb"] == 250
    assert by_provider["Google Cloud Functions"]["deployment_limit_mb"] == 100
    # Concurrency limits: 1000 / 200 / 100.
    assert by_provider["AWS Lambda"]["concurrency_limit"] == 1000
    assert by_provider["Azure Functions"]["concurrency_limit"] == 200
    assert by_provider["Google Cloud Functions"]["concurrency_limit"] == 100
