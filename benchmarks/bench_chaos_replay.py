"""Chaos replay benchmark: what supervision costs, and what recovery costs.

Two questions, one scenario (6 functions x Poisson 40/s, streaming mode,
sharded over 2 workers):

* **Supervision overhead** — the same clean replay run unsupervised and
  under :class:`~repro.parallel.SupervisorConfig` (heartbeats, the Manager
  dict, the poll loop).  Min-of-N wall clocks; the supervised run must stay
  within ``OVERHEAD_CEILING`` (5%) of the unsupervised baseline.  Set
  ``BENCH_SKIP_OVERHEAD_GATE=1`` to record the measurement without
  enforcing it (noisy shared runners).
* **Recovery wall clock** — the same replay with one worker killed by
  fault injection (``os._exit`` mid-shard, breaking the pool): the
  supervisor rebuilds the pool, requeues the dead shard, and the run still
  completes with results bit-identical to the unsupervised baseline.  The
  crashed run's total wall clock is the gated ``recovery_wall_clock_s``.

Emits ``benchmarks/BENCH_chaos_replay.json``; both headline metrics are
gated by ``benchmarks/check_regression.py`` (this benchmark runs in the CI
chain via ``make bench-chaos``).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.parallel import ShardFault, SupervisorConfig, WorkerFaultInjection
from repro.simulator.providers import create_platform
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import FunctionTraffic, Scenario

FUNCTIONS = 6
RATE_PER_S = 40.0
TARGET_INVOCATIONS = 150_000
DURATION_S = TARGET_INVOCATIONS / (FUNCTIONS * RATE_PER_S)
WORKERS = 2
#: Paired (unsupervised, supervised) samples: at least MIN, stopping early
#: once the overhead gate is satisfied, at most MAX.  Run-to-run noise on a
#: busy 2-core runner exceeds the 5% ceiling, so a fixed small N flakes;
#: min-over-pairs with early exit converges while still failing a genuine
#: regression every time.
MIN_REPETITIONS = 2
MAX_REPETITIONS = 6
OVERHEAD_CEILING = 0.05

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_chaos_replay.json"


def _deployed_platform():
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42, log_retention=128))
    for index in range(FUNCTIONS):
        deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name=f"fn-{index:02d}")
    return platform


def _scenario() -> Scenario:
    return Scenario(
        name="chaos-replay",
        duration_s=DURATION_S,
        traffic=tuple(
            FunctionTraffic(function_name=f"fn-{index:02d}", process=PoissonArrivals(RATE_PER_S))
            for index in range(FUNCTIONS)
        ),
    )


def _supervision(fault: WorkerFaultInjection | None = None) -> SupervisorConfig:
    return SupervisorConfig(shard_timeout_s=60.0, fault_injection=fault)


def _run(scenario, supervision=None):
    start = time.perf_counter()
    result = _deployed_platform().run_workload(
        scenario, keep_records=False, workers=WORKERS, supervision=supervision
    )
    return result, time.perf_counter() - start


def test_chaos_replay_overhead_and_recovery(benchmark):
    scenario = _scenario()

    unsupervised_walls, supervised_walls = [], []
    baseline = supervised = None
    overhead = 0.0
    for repetition in range(MAX_REPETITIONS):
        baseline, wall = _run(scenario)
        unsupervised_walls.append(wall)
        supervised, wall = _run(scenario, supervision=_supervision())
        supervised_walls.append(wall)
        unsupervised_wall = min(unsupervised_walls)
        supervised_wall = min(supervised_walls)
        overhead = supervised_wall / unsupervised_wall - 1.0 if unsupervised_wall > 0 else 0.0
        if repetition + 1 >= MIN_REPETITIONS and overhead <= OVERHEAD_CEILING:
            break

    # One worker dies mid-replay (pool breakage); the run must still finish.
    crashed, recovery_wall = run_once(
        benchmark,
        lambda: _run(
            scenario,
            supervision=_supervision(WorkerFaultInjection({0: ShardFault("crash")})),
        ),
    )

    throughput = baseline.invocations / supervised_wall if supervised_wall > 0 else 0.0
    print(
        f"\nchaos replay of {baseline.invocations:,} invocations x{WORKERS}: "
        f"unsupervised {unsupervised_wall:.2f}s, supervised {supervised_wall:.2f}s "
        f"({100 * overhead:+.1f}% overhead), crash recovery {recovery_wall:.2f}s "
        f"({crashed.supervision['pool_breaks']} pool break(s), "
        f"{crashed.supervision['retries']} retr{'y' if crashed.supervision['retries'] == 1 else 'ies'})"
    )
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "chaos_replay",
            "invocations": baseline.invocations,
            "functions": FUNCTIONS,
            "workers": WORKERS,
            "wall_clock_unsupervised_s": round(unsupervised_wall, 4),
            "wall_clock_supervised_s": round(supervised_wall, 4),
            "clean_supervised_throughput_per_s": round(throughput, 1),
            "supervision_overhead": round(overhead, 4),
            "overhead_ceiling": OVERHEAD_CEILING,
            "recovery_wall_clock_s": round(recovery_wall, 4),
            "recovery_pool_breaks": crashed.supervision["pool_breaks"],
            "recovery_retries": crashed.supervision["retries"],
        },
    )

    # Neither supervision nor the mid-replay worker kill may move a number.
    for result in (supervised, crashed):
        assert result.invocations == baseline.invocations
        assert result.cold_start_total == baseline.cold_start_total
        assert result.total_cost_usd == baseline.total_cost_usd
        assert result.simulated_span_s == baseline.simulated_span_s
    assert crashed.supervision["pool_breaks"] >= 1
    assert crashed.supervision["retries"] >= 1

    if not os.environ.get("BENCH_SKIP_OVERHEAD_GATE"):
        assert overhead <= OVERHEAD_CEILING, (
            f"supervised clean replay is {100 * overhead:.1f}% slower than the "
            f"unsupervised baseline (ceiling {100 * OVERHEAD_CEILING:.0f}%)"
        )
