"""Table 4: local characterization of every benchmark (real kernel executions)."""

from __future__ import annotations

from conftest import run_once

from repro.benchmarks.base import InputSize
from repro.experiments.characterization import CharacterizationExperiment
from repro.reporting.tables import format_table


def test_table4_local_characterization(benchmark, experiment_config, simulation_config):
    experiment = CharacterizationExperiment(
        config=experiment_config,
        simulation=simulation_config,
        repetitions=5,
        size=InputSize.TEST,
    )
    characterization = run_once(benchmark, experiment.run)
    rows = characterization.to_rows()
    print("\n" + format_table(rows))

    by_name = {row["benchmark"]: row for row in rows}
    assert len(rows) == 10

    # Relative ordering of computational weight from Table 4: the website
    # backend is the cheapest, the multimedia pipeline the most expensive.
    assert by_name["dynamic-html"]["warm_time_ms"] < by_name["graph-bfs"]["warm_time_ms"]
    assert by_name["graph-bfs"]["warm_time_ms"] < by_name["video-processing"]["warm_time_ms"]

    # Graph benchmarks and inference are CPU bound (≈99% CPU in the paper).
    for name in ("graph-bfs", "graph-pagerank", "graph-mst"):
        assert by_name[name]["cpu_utilization_pct"] > 80.0

    # Every kernel really executed: positive times and output sizes everywhere.
    for row in rows:
        assert row["cold_time_ms"] > 0 and row["warm_time_ms"] > 0
        assert row["output_bytes"] > 0

    # The storage-backed benchmarks moved real bytes through the object store.
    for name in ("uploader", "thumbnailer", "compression", "video-processing", "data-vis"):
        assert by_name[name]["storage_write_bytes"] > 0
