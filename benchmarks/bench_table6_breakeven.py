"""Table 6: FaaS-vs-IaaS break-even request rates (Eco and Perf configurations)."""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider
from repro.experiments.cost_analysis import CostAnalysis
from repro.experiments.faas_vs_iaas import FaasVsIaasExperiment
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.tables import format_table

BENCHMARKS = {
    "uploader": (512, 1024, 3008),
    "thumbnailer": (512, 1024, 3008),
    "graph-bfs": (512, 1024, 3008),
}


def _run(experiment_config, simulation_config):
    perf_cost = PerfCostExperiment(config=experiment_config, simulation=simulation_config)
    iaas = FaasVsIaasExperiment(config=experiment_config, simulation=simulation_config)
    rows = []
    for name, sizes in BENCHMARKS.items():
        result = perf_cost.run(name, providers=(Provider.AWS,), memory_sizes=sizes)
        table5 = iaas.run_benchmark(name)
        points = CostAnalysis(result).break_even(
            iaas_local_requests_per_hour=table5.iaas_local_requests_per_hour,
            iaas_cloud_requests_per_hour=table5.iaas_cloud_requests_per_hour,
        )
        for label, point in points.items():
            row = point.to_row()
            row["kind"] = label
            rows.append(row)
    return rows


def test_table6_break_even(benchmark, experiment_config, simulation_config):
    rows = run_once(benchmark, lambda: _run(experiment_config, simulation_config))
    print("\n" + format_table(rows))

    by_key = {(row["benchmark"], row["kind"]): row for row in rows}
    for name in BENCHMARKS:
        eco = by_key[(name, "eco")]
        perf = by_key[(name, "perf")]
        # The economical configuration is at least as cheap as the fastest one,
        # hence its break-even rate is at least as high.
        assert eco["cost_per_1M_usd"] <= perf["cost_per_1M_usd"] + 1e-9
        assert eco["break_even_req_per_hour"] >= perf["break_even_req_per_hour"]
        # The break-even rates are modest (hundreds to thousands of requests
        # per hour) and the VM can sustain far more than that — the paper's
        # conclusion that IaaS wins at high utilisation.
        assert 100 <= perf["break_even_req_per_hour"] <= 1_000_000
        assert eco["iaas_local_req_per_hour"] > 1000
