"""Figure 5b: median ratio of used to billed resources (AWS and GCP)."""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.figures import figure5b_resource_usage_series
from repro.reporting.tables import format_table


def test_figure5b_resource_usage(benchmark, experiment_config, simulation_config):
    experiment = PerfCostExperiment(config=experiment_config, simulation=simulation_config)

    def run():
        results = []
        for name, sizes in (("uploader", (128, 1024, 3008)), ("graph-bfs", (128, 1024, 3008)), ("compression", (512, 1024, 3008))):
            results.append(experiment.run(name, providers=(Provider.AWS, Provider.GCP), memory_sizes=sizes))
        return results

    results = run_once(benchmark, run)
    rows = []
    for result in results:
        rows.extend(figure5b_resource_usage_series(result))
    print("\n" + format_table(rows))

    # Azure is excluded (unreliable monitor data), AWS and GCP are present.
    assert {row["provider"] for row in rows} == {"aws", "gcp"}

    # Resource usage falls as the memory allocation grows: at the largest
    # allocations only a small fraction of the billed GB-seconds is used,
    # which is the paper's under-utilisation argument.
    for provider in ("aws", "gcp"):
        for name in ("uploader", "graph-bfs"):
            series = {
                row["memory_mb"]: row["memory_usage_pct"]
                for row in rows
                if row["provider"] == provider and row["benchmark"] == name and row["start_type"] == "warm"
            }
            memories = sorted(series)
            assert series[memories[0]] > series[memories[-1]]
            assert series[memories[-1]] < 40.0
