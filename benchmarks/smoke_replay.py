"""CI smoke gate: trace and workflow replays with wall-clock budgets.

Run as a plain script (``make bench-smoke``); no pytest-benchmark needed.
Four checks:

* a 10k-invocation flat trace replay (catches catastrophic scheduler
  regressions — an accidental O(pool x in-flight) hot path pushes the
  replay from well under a second to tens of seconds);
* a fan-out/fan-in workflow replay (catches regressions in the workflow
  subsystem: the feedback request source, trigger-edge scheduling and the
  critical-path accounting identity);
* a sharded-replay equivalence gate (``--workers``, default 2): the same
  multi-function trace replayed serially and through the parallel path
  (:mod:`repro.parallel`) must agree *exactly* on every merged statistic;
* an overloaded-replay equivalence gate: the same trace replayed under a
  tight concurrency cap (:mod:`repro.concurrency`) must shed work
  (throttles, drops, queue delay) *and* still merge exactly under
  sharding;
* a fault-storm gate (:mod:`repro.faults` + :mod:`repro.resilience`): the
  retry-storm experiment must keep demonstrating metastable failure — the
  naive client's post-recovery goodput stays collapsed (<= 50% of
  pre-outage) while the breaker-equipped client recovers (>= 90%) — and
  the whole scenario must stay bit-identical under sharded replay;
* a crash-recovery gate (:mod:`repro.parallel.supervisor`): a worker
  killed mid-replay must be detected, the pool rebuilt and the shard
  retried, with the merged result bit-identical to serial replay, inside
  a 60 s budget;
* a columnar-equivalence gate (:mod:`repro.columnar`): the 10k trace
  replayed through the vectorized hot path must produce record lists and
  streaming aggregates bit-identical to the scalar engine — serially and
  sharded — while streaming clearly faster than scalar.

The thresholds are deliberately loose — the point is to catch order-of-
magnitude breakage, not to flake on slow CI runners.  The measured
throughputs are additionally written to ``benchmarks/BENCH_smoke.json``,
which the perf-regression gate (``benchmarks/check_regression.py``)
compares against the committed baselines.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.concurrency import OverloadConfig
from repro.config import ExperimentConfig, Provider, SimulationConfig, TriggerType
from repro.experiments.resilience import ResilienceExperiment
from repro.experiments.base import deploy_benchmark
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace
from repro.workflows import standard_workflow, synthesize_workflow_arrivals

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_smoke.json"

#: Throughput figures collected by the smoke checks for BENCH_smoke.json.
METRICS: dict[str, float] = {}

SMOKE_INVOCATIONS = 10_000
ARRIVAL_RATE_PER_S = 50.0
#: Generous wall-clock budget (the indexed scheduler needs < 1 s).
WALL_CLOCK_BUDGET_S = 30.0

#: Workflow smoke: fanout DAG, 500 executions x (2 + 4) = 3000 invocations.
WORKFLOW_EXECUTIONS = 500
WORKFLOW_FAN_OUT = 4
WORKFLOW_BUDGET_S = 30.0


def _smoke_trace() -> list[str]:
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42))
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    duration_s = 1.05 * SMOKE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=42
    )
    if len(trace) < SMOKE_INVOCATIONS:
        return [f"synthesized only {len(trace)} requests"]
    trace = WorkloadTrace(list(trace)[:SMOKE_INVOCATIONS])

    result = platform.run_workload(trace)
    METRICS["trace_throughput_per_s"] = round(result.throughput_per_s, 1)
    print(
        f"bench-smoke: {result.invocations} invocations in {result.wall_clock_s:.2f}s "
        f"({result.throughput_per_s:,.0f}/s), cold rate {100 * result.cold_start_rate:.2f}%, "
        f"cost ${result.total_cost_usd:.4f}"
    )

    failures = []
    if result.invocations != SMOKE_INVOCATIONS:
        failures.append(f"expected {SMOKE_INVOCATIONS} records, got {result.invocations}")
    if result.wall_clock_s > WALL_CLOCK_BUDGET_S:
        failures.append(f"replay took {result.wall_clock_s:.2f}s > {WALL_CLOCK_BUDGET_S:.0f}s budget")
    if result.cold_start_rate > 0.10:
        failures.append(f"cold-start rate {result.cold_start_rate:.3f} > 0.10")
    return failures


def _smoke_workflow() -> list[str]:
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42))
    spec, functions = standard_workflow("fanout", fan_out=WORKFLOW_FAN_OUT)
    for function in functions:
        deploy_benchmark(
            platform,
            function.benchmark,
            memory_mb=function.memory_mb,
            function_name=function.function_name,
        )
    rate_per_s = 10.0
    arrivals = synthesize_workflow_arrivals(
        spec,
        PoissonArrivals(rate_per_s),
        duration_s=1.1 * WORKFLOW_EXECUTIONS / rate_per_s,
        rng=42,
    )
    if len(arrivals) < WORKFLOW_EXECUTIONS:
        return [f"synthesized only {len(arrivals)} workflow arrivals"]
    arrivals = arrivals[:WORKFLOW_EXECUTIONS]

    result = platform.run_workflows(arrivals, keep_records=False)
    METRICS["workflow_throughput_per_s"] = round(result.throughput_per_s, 1)
    print(
        f"bench-smoke: {result.execution_count} workflow executions "
        f"({result.invocation_total} constituent invocations) in "
        f"{result.wall_clock_s:.2f}s ({result.throughput_per_s:,.0f}/s), "
        f"mean e2e {result.mean_end_to_end_s * 1000:.0f} ms"
    )

    expected_invocations = WORKFLOW_EXECUTIONS * (WORKFLOW_FAN_OUT + 2)
    failures = []
    if result.execution_count != WORKFLOW_EXECUTIONS:
        failures.append(
            f"expected {WORKFLOW_EXECUTIONS} executions, got {result.execution_count}"
        )
    if result.invocation_total != expected_invocations:
        failures.append(
            f"expected {expected_invocations} constituent invocations, "
            f"got {result.invocation_total}"
        )
    if result.wall_clock_s > WORKFLOW_BUDGET_S:
        failures.append(
            f"workflow replay took {result.wall_clock_s:.2f}s > {WORKFLOW_BUDGET_S:.0f}s budget"
        )
    # Critical-path identity: components tile the end-to-end interval.
    components = (
        result.compute_s_total + result.cold_start_s_total + result.trigger_propagation_s_total
    )
    if abs(components - result.end_to_end_s_total) > 1e-6 * max(1.0, result.end_to_end_s_total):
        failures.append(
            f"critical-path components {components:.6f}s != end-to-end {result.end_to_end_s_total:.6f}s"
        )
    return failures


#: Parallel smoke: 3 functions x 4k invocations, serial vs sharded replay.
PARALLEL_FUNCTIONS = 3
PARALLEL_INVOCATIONS_PER_FN = 4_000
PARALLEL_BUDGET_S = 60.0


def _parallel_fixture():
    platform = create_platform(Provider.GCP, SimulationConfig(seed=42))
    traces = []
    for index in range(PARALLEL_FUNCTIONS):
        fname = deploy_benchmark(
            platform, "dynamic-html", memory_mb=256, function_name=f"smoke-{index}"
        )
        duration_s = 1.1 * PARALLEL_INVOCATIONS_PER_FN / ARRIVAL_RATE_PER_S
        trace = WorkloadTrace.synthesize(
            fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=100 + index
        )
        traces.append(WorkloadTrace(list(trace)[:PARALLEL_INVOCATIONS_PER_FN]))
    return platform, WorkloadTrace.merge(*traces)


def _smoke_parallel(workers: int) -> list[str]:
    serial_platform, trace = _parallel_fixture()
    serial = serial_platform.run_workload(trace, keep_records=False)
    parallel_platform, _ = _parallel_fixture()
    parallel = parallel_platform.run_workload(trace, keep_records=False, workers=workers)
    METRICS["sharded_throughput_per_s"] = round(parallel.throughput_per_s, 1)
    print(
        f"bench-smoke: sharded replay x{workers}: {parallel.invocations} invocations in "
        f"{parallel.wall_clock_s:.2f}s ({parallel.throughput_per_s:,.0f}/s), serial "
        f"{serial.wall_clock_s:.2f}s"
    )

    failures = []
    if parallel.invocations != serial.invocations:
        failures.append(
            f"parallel replayed {parallel.invocations} invocations, serial {serial.invocations}"
        )
    if parallel.cold_start_total != serial.cold_start_total:
        failures.append(
            f"parallel cold starts {parallel.cold_start_total} != serial {serial.cold_start_total}"
        )
    if parallel.total_cost_usd != serial.total_cost_usd:
        failures.append(
            f"parallel cost {parallel.total_cost_usd!r} != serial {serial.total_cost_usd!r}"
        )
    if parallel.simulated_span_s != serial.simulated_span_s:
        failures.append(
            f"parallel span {parallel.simulated_span_s!r} != serial {serial.simulated_span_s!r}"
        )
    for fname, serial_summary in serial.per_function().items():
        parallel_summary = parallel.per_function()[fname]
        if (
            parallel_summary.invocations != serial_summary.invocations
            or parallel_summary.total_cost_usd != serial_summary.total_cost_usd
            or parallel_summary.client_time.percentiles != serial_summary.client_time.percentiles
        ):
            failures.append(f"per-function summary of {fname!r} diverged under sharding")
    if parallel.wall_clock_s > PARALLEL_BUDGET_S:
        failures.append(
            f"sharded replay took {parallel.wall_clock_s:.2f}s > {PARALLEL_BUDGET_S:.0f}s budget"
        )
    return failures


#: Overload smoke: tight cap, sync + async traffic, serial vs sharded.
OVERLOAD_RESERVED = 3
OVERLOAD_INVOCATIONS_PER_FN = 1_500
OVERLOAD_BUDGET_S = 30.0


def _overload_fixture():
    overload = OverloadConfig(
        reserved_concurrency=OVERLOAD_RESERVED,
        max_retries=2,
        admission_queue_depth=100,
        admission_max_age_s=5.0,
    )
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42, overload=overload))
    traces = []
    for index, trigger in enumerate((TriggerType.HTTP, TriggerType.QUEUE)):
        fname = deploy_benchmark(
            platform, "dynamic-html", memory_mb=256, function_name=f"hot-{index}"
        )
        duration_s = 1.1 * OVERLOAD_INVOCATIONS_PER_FN / ARRIVAL_RATE_PER_S
        trace = WorkloadTrace.synthesize(
            fname,
            PoissonArrivals(ARRIVAL_RATE_PER_S),
            duration_s=duration_s,
            rng=200 + index,
            trigger=trigger,
        )
        traces.append(WorkloadTrace(list(trace)[:OVERLOAD_INVOCATIONS_PER_FN]))
    return platform, WorkloadTrace.merge(*traces)


def _smoke_overload(workers: int) -> list[str]:
    serial_platform, trace = _overload_fixture()
    serial = serial_platform.run_workload(trace, keep_records=False)
    parallel_platform, _ = _overload_fixture()
    parallel = parallel_platform.run_workload(trace, keep_records=False, workers=workers)
    METRICS["overload_throughput_per_s"] = round(serial.throughput_per_s, 1)
    print(
        f"bench-smoke: overloaded replay (cap {OVERLOAD_RESERVED}): "
        f"{serial.invocations} requests in {serial.wall_clock_s:.2f}s "
        f"({serial.throughput_per_s:,.0f}/s), {serial.throttled_count} throttled, "
        f"{serial.dropped_count} dropped, {serial.retry_count} retries"
    )

    failures = []
    if serial.throttled_count == 0:
        failures.append("overloaded replay throttled nothing (cap not enforced?)")
    # Conservation: executed is counted independently of the shed counters,
    # so a lost or double-counted request genuinely fails this.
    outcome_sum = serial.executed_count + serial.throttled_count + serial.dropped_count
    if outcome_sum != serial.invocations:
        failures.append(
            f"overload outcomes do not partition the requests "
            f"({outcome_sum} != {serial.invocations})"
        )
    for attribute in (
        "invocations",
        "executed_count",
        "throttled_count",
        "dropped_count",
        "retry_count",
        "queue_delay_s",
        "total_cost_usd",
        "simulated_span_s",
    ):
        serial_value = getattr(serial, attribute)
        parallel_value = getattr(parallel, attribute)
        if serial_value != parallel_value:
            failures.append(
                f"overloaded sharded {attribute} {parallel_value!r} != serial {serial_value!r}"
            )
    if serial.wall_clock_s > OVERLOAD_BUDGET_S:
        failures.append(
            f"overloaded replay took {serial.wall_clock_s:.2f}s > {OVERLOAD_BUDGET_S:.0f}s budget"
        )
    return failures


#: Fault-storm smoke: the canned retry-storm scenario, serial vs sharded.
FAULT_STORM_BUDGET_S = 60.0
NAIVE_RECOVERY_CEILING = 0.5
RESILIENT_RECOVERY_FLOOR = 0.9


def _smoke_fault_storm(workers: int) -> list[str]:
    experiment = ResilienceExperiment(
        config=ExperimentConfig(seed=42), simulation=SimulationConfig(seed=42)
    )
    wall_start = time.perf_counter()
    serial = experiment.run()
    wall_clock_s = time.perf_counter() - wall_start
    invocations = sum(v.invocations for v in serial.variants)
    METRICS["fault_storm_throughput_per_s"] = (
        round(invocations / wall_clock_s, 1) if wall_clock_s > 0 else 0.0
    )
    naive = serial.variant("naive")
    resilient = serial.variant("resilient")
    print(
        f"bench-smoke: fault storm: {invocations} requests in {wall_clock_s:.2f}s, "
        f"recovery naive {naive.recovery_ratio:.2f} "
        f"(retries {naive.retries}), resilient {resilient.recovery_ratio:.2f} "
        f"(short-circuited {resilient.short_circuited})"
    )

    failures = []
    if naive.recovery_ratio > NAIVE_RECOVERY_CEILING:
        failures.append(
            f"naive client recovered to {naive.recovery_ratio:.2f} > "
            f"{NAIVE_RECOVERY_CEILING} of pre-outage goodput (metastability lost?)"
        )
    if resilient.recovery_ratio < RESILIENT_RECOVERY_FLOOR:
        failures.append(
            f"breaker client recovered only to {resilient.recovery_ratio:.2f} < "
            f"{RESILIENT_RECOVERY_FLOOR} of pre-outage goodput"
        )
    if resilient.short_circuited == 0:
        failures.append("breaker never short-circuited during the outage")
    sharded = experiment.run(workers=workers)
    # Simulation outputs only: the host-side replay block (wall clock,
    # throughput) legitimately differs between the two runs.
    if sharded.to_dict(include_replay=False) != serial.to_dict(include_replay=False):
        failures.append(f"fault-storm replay diverged under sharding (x{workers})")
    if wall_clock_s > FAULT_STORM_BUDGET_S:
        failures.append(
            f"fault-storm replay took {wall_clock_s:.2f}s > {FAULT_STORM_BUDGET_S:.0f}s budget"
        )
    return failures


#: Chaos smoke: one injected worker kill mid-replay; the supervisor must
#: recover (pool rebuild + retry) to a bit-identical result inside budget.
CHAOS_BUDGET_S = 60.0


def _smoke_chaos_recovery(workers: int) -> list[str]:
    from repro.parallel import ShardFault, SupervisorConfig, WorkerFaultInjection

    serial_platform, trace = _parallel_fixture()
    serial = serial_platform.run_workload(trace, keep_records=False)
    supervision = SupervisorConfig(
        shard_timeout_s=30.0,
        fault_injection=WorkerFaultInjection({0: ShardFault("crash")}),
    )
    chaos_platform, _ = _parallel_fixture()
    # Crash injection breaks the pool, so it needs the process backend —
    # at least 2 workers regardless of the smoke worker count.
    recovered = chaos_platform.run_workload(
        trace, keep_records=False, workers=max(2, workers), supervision=supervision
    )
    METRICS["chaos_recovery_throughput_per_s"] = round(recovered.throughput_per_s, 1)
    report = recovered.supervision or {}
    print(
        f"bench-smoke: chaos recovery: worker killed mid-replay, "
        f"{recovered.invocations} invocations in {recovered.wall_clock_s:.2f}s "
        f"({recovered.throughput_per_s:,.0f}/s), {report.get('pool_breaks', 0)} "
        f"pool break(s), {report.get('retries', 0)} retr(ies)"
    )

    failures = []
    if report.get("pool_breaks", 0) < 1:
        failures.append("chaos recovery: injected worker kill broke no pool (injection inert?)")
    if report.get("retries", 0) < 1:
        failures.append("chaos recovery: killed shard was never retried")
    for attribute in (
        "invocations",
        "cold_start_total",
        "total_cost_usd",
        "simulated_span_s",
    ):
        serial_value = getattr(serial, attribute)
        recovered_value = getattr(recovered, attribute)
        if recovered_value != serial_value:
            failures.append(
                f"chaos recovery {attribute} {recovered_value!r} != serial {serial_value!r}"
            )
    if recovered.wall_clock_s > CHAOS_BUDGET_S:
        failures.append(
            f"chaos recovery took {recovered.wall_clock_s:.2f}s > {CHAOS_BUDGET_S:.0f}s budget"
        )
    return failures


#: Columnar smoke: the 10k flat trace replayed scalar and columnar — the
#: record lists (frozen dataclasses, so ``==`` is bit equality including
#: cost breakdowns and timestamps) and the streaming aggregates must agree
#: exactly, serially and under sharding, and the columnar streaming replay
#: must hold a clear throughput advantage.
COLUMNAR_BUDGET_S = 30.0
COLUMNAR_MIN_SPEEDUP = 1.5


def _columnar_fixture(columnar: bool):
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42, columnar=columnar))
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    return platform, fname


def _smoke_columnar(workers: int) -> list[str]:
    platform, fname = _columnar_fixture(False)
    duration_s = 1.05 * SMOKE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=42
    )
    if len(trace) < SMOKE_INVOCATIONS:
        return [f"synthesized only {len(trace)} requests"]
    trace = WorkloadTrace(list(trace)[:SMOKE_INVOCATIONS])

    scalar = platform.run_workload(trace)
    scalar_stream = _columnar_fixture(False)[0].run_workload(trace, keep_records=False)
    columnar = _columnar_fixture(True)[0].run_workload(trace)
    columnar_stream = _columnar_fixture(True)[0].run_workload(trace, keep_records=False)
    METRICS["columnar_throughput_per_s"] = round(columnar_stream.throughput_per_s, 1)
    speedup = (
        columnar_stream.throughput_per_s / scalar_stream.throughput_per_s
        if scalar_stream.throughput_per_s > 0
        else 0.0
    )
    print(
        f"bench-smoke: columnar replay: {columnar_stream.invocations} invocations in "
        f"{columnar_stream.wall_clock_s:.2f}s ({columnar_stream.throughput_per_s:,.0f}/s "
        f"streaming, {speedup:.1f}x scalar), records bit-checked against scalar"
    )

    failures = []
    if columnar.records != scalar.records:
        diverged = sum(
            1 for a, b in zip(scalar.records, columnar.records) if a != b
        ) + abs(len(scalar.records) - len(columnar.records))
        failures.append(
            f"columnar records are not bit-identical to scalar ({diverged} diverged)"
        )
    for attribute in (
        "invocations",
        "cold_start_total",
        "failure_total",
        "total_cost_usd",
        "simulated_span_s",
        "peak_in_flight",
    ):
        scalar_value = getattr(scalar_stream, attribute)
        columnar_value = getattr(columnar_stream, attribute)
        if columnar_value != scalar_value:
            failures.append(
                f"columnar streaming {attribute} {columnar_value!r} != scalar {scalar_value!r}"
            )
    for fname_, scalar_summary in scalar_stream.per_function().items():
        columnar_summary = columnar_stream.per_function()[fname_]
        if (
            columnar_summary.invocations != scalar_summary.invocations
            or columnar_summary.total_cost_usd != scalar_summary.total_cost_usd
            or columnar_summary.client_time.percentiles != scalar_summary.client_time.percentiles
        ):
            failures.append(f"columnar summary of {fname_!r} diverged from scalar")
    sharded = _columnar_fixture(True)[0].run_workload(trace, workers=workers)
    if sharded.records != scalar.records:
        failures.append(
            f"sharded columnar records (x{workers}) are not bit-identical to serial scalar"
        )
    if speedup < COLUMNAR_MIN_SPEEDUP:
        failures.append(
            f"columnar streaming speedup {speedup:.2f}x < {COLUMNAR_MIN_SPEEDUP}x scalar"
        )
    if columnar_stream.wall_clock_s > COLUMNAR_BUDGET_S:
        failures.append(
            f"columnar replay took {columnar_stream.wall_clock_s:.2f}s > "
            f"{COLUMNAR_BUDGET_S:.0f}s budget"
        )
    return failures


def _emit_bench_json() -> None:
    """Write the smoke throughputs for the perf-regression gate."""
    from conftest import emit_bench_json

    emit_bench_json(BENCH_JSON, {"benchmark": "smoke_replay", **METRICS})


def main() -> int:
    parser = argparse.ArgumentParser(description="CI smoke gate for replay regressions")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the sharded-replay equivalence gate",
    )
    args = parser.parse_args()
    failures = _smoke_trace()
    failures += _smoke_workflow()
    failures += _smoke_parallel(args.workers)
    failures += _smoke_overload(args.workers)
    failures += _smoke_fault_storm(args.workers)
    failures += _smoke_chaos_recovery(args.workers)
    failures += _smoke_columnar(args.workers)
    _emit_bench_json()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
