"""CI smoke gate: a 10k-invocation trace replay with a wall-clock budget.

Run as a plain script (``make bench-smoke``); no pytest-benchmark needed.
The thresholds are deliberately loose — the point is to catch catastrophic
scheduler regressions (an accidental O(pool x in-flight) hot path pushes the
replay from well under a second to tens of seconds), not to flake on slow CI
runners.
"""

from __future__ import annotations

import sys

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

SMOKE_INVOCATIONS = 10_000
ARRIVAL_RATE_PER_S = 50.0
#: Generous wall-clock budget (the indexed scheduler needs < 1 s).
WALL_CLOCK_BUDGET_S = 30.0


def main() -> int:
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42))
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    duration_s = 1.05 * SMOKE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=42
    )
    if len(trace) < SMOKE_INVOCATIONS:
        print(f"FAIL: synthesized only {len(trace)} requests")
        return 1
    trace = WorkloadTrace(list(trace)[:SMOKE_INVOCATIONS])

    result = platform.run_workload(trace)
    print(
        f"bench-smoke: {result.invocations} invocations in {result.wall_clock_s:.2f}s "
        f"({result.throughput_per_s:,.0f}/s), cold rate {100 * result.cold_start_rate:.2f}%, "
        f"cost ${result.total_cost_usd:.4f}"
    )

    failures = []
    if result.invocations != SMOKE_INVOCATIONS:
        failures.append(f"expected {SMOKE_INVOCATIONS} records, got {result.invocations}")
    if result.wall_clock_s > WALL_CLOCK_BUDGET_S:
        failures.append(f"replay took {result.wall_clock_s:.2f}s > {WALL_CLOCK_BUDGET_S:.0f}s budget")
    if result.cold_start_rate > 0.10:
        failures.append(f"cold-start rate {result.cold_start_rate:.3f} > 0.10")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("bench-smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
