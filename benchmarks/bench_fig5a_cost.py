"""Figure 5a: compute cost of one million invocations versus memory configuration."""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider
from repro.experiments.cost_analysis import CostAnalysis
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.figures import figure5a_cost_series
from repro.reporting.tables import format_table


def _run(experiment_config, simulation_config):
    experiment = PerfCostExperiment(config=experiment_config, simulation=simulation_config)
    uploader = experiment.run(
        "uploader", providers=(Provider.AWS, Provider.GCP, Provider.AZURE), memory_sizes=(128, 512, 1024, 3008)
    )
    recognition = experiment.run(
        "image-recognition", providers=(Provider.AWS, Provider.GCP), memory_sizes=(1024, 2048, 3008)
    )
    return uploader, recognition


def test_figure5a_cost_of_million_invocations(benchmark, experiment_config, simulation_config):
    uploader, recognition = run_once(benchmark, lambda: _run(experiment_config, simulation_config))
    rows = figure5a_cost_series(uploader) + figure5a_cost_series(recognition)
    print("\n" + format_table(rows))

    uploader_costs = {
        row["memory_mb"]: row["cost_per_1M_usd"]
        for row in figure5a_cost_series(uploader)
        if row["provider"] == "aws" and row["start_type"] == "warm"
    }
    # For the I/O-bound uploader, every memory expansion increases the cost:
    # the shorter runtime does not compensate for the more expensive memory.
    memories = sorted(uploader_costs)
    assert all(uploader_costs[a] <= uploader_costs[b] for a, b in zip(memories, memories[1:]))

    recognition_costs = {
        row["memory_mb"]: row["cost_per_1M_usd"]
        for row in figure5a_cost_series(recognition)
        if row["provider"] == "aws" and row["start_type"] == "warm"
    }
    # For compute-bound image-recognition the cost grows far slower than the
    # memory because execution time shrinks (cost increases "negligibly").
    assert recognition_costs[3008] < recognition_costs[1024] * (3008 / 1024) * 0.8

    # Azure's dynamically allocated deployment cannot be tuned and is more
    # expensive than the cheapest AWS configuration.
    azure_costs = [
        row["cost_per_1M_usd"]
        for row in figure5a_cost_series(uploader)
        if row["provider"] == "azure" and row["start_type"] == "warm"
    ]
    assert min(azure_costs) > min(uploader_costs.values())
