"""Table 3: the SeBS application suite (names, languages, dependencies)."""

from __future__ import annotations

from conftest import run_once

from repro.reporting.tables import format_table, table3_applications


def test_table3_applications(benchmark):
    rows = run_once(benchmark, table3_applications)
    print("\n" + format_table(rows))

    names = {row["name"] for row in rows}
    assert names == {
        "dynamic-html",
        "uploader",
        "thumbnailer",
        "video-processing",
        "compression",
        "data-vis",
        "image-recognition",
        "graph-pagerank",
        "graph-mst",
        "graph-bfs",
    }
    # Exactly one application requires a non-pip (native) dependency: ffmpeg.
    native = [row["name"] for row in rows if row["native_dependencies"] == "yes"]
    assert native == ["video-processing"]
    # Three applications ship both Python and Node.js implementations.
    bilingual = [row["name"] for row in rows if "Node.js" in row["languages"]]
    assert sorted(bilingual) == ["dynamic-html", "thumbnailer", "uploader"]
    # Categories cover all six workload types of the specification.
    assert {row["type"] for row in rows} == {"webapps", "multimedia", "utilities", "inference", "scientific"}
