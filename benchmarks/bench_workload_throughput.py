"""Simulator throughput: invocations simulated per wall-clock second.

Not a paper figure — this target measures the *reproduction itself*: how
fast the event-queue engine (:mod:`repro.workload.engine`) pushes a
100 000-invocation Poisson trace through a simulated provider.  The rate is
the number a capacity plan needs ("a day of production traffic replays in
N seconds") and guards against accidental O(n^2) regressions in the
container-pool bookkeeping.

Besides the printed report, the 100k target writes
``benchmarks/BENCH_workload_throughput.json`` — machine-readable throughput,
peak RSS and client-latency percentiles, with the previous run's figures
carried along as ``previous`` so the perf trajectory is tracked across PRs.

A second target replays a lazily generated 1M-invocation trace in
streaming-aggregation mode (``keep_records=False``) and asserts the
replay's memory footprint stays O(functions), not O(invocations).
"""

from __future__ import annotations

import resource
import tracemalloc
from pathlib import Path

import numpy as np

from conftest import emit_bench_json, run_once

from repro.config import Provider, SimulationConfig, TriggerType
from repro.faas.invocation import InvocationRequest
from repro.simulator.providers import create_platform
from repro.experiments.base import deploy_benchmark
from repro.workload import PoissonArrivals, WorkloadTrace

TRACE_INVOCATIONS = 100_000
ARRIVAL_RATE_PER_S = 50.0
STREAMING_INVOCATIONS = 1_000_000

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_workload_throughput.json"


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MB (Linux: ru_maxrss is kB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _emit_bench_json(result) -> None:
    """Write the machine-readable perf record, keeping the previous run."""
    client_times_ms = np.asarray([r.client_time_s for r in result.records]) * 1000.0
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "workload_throughput_100k",
            "invocations": result.invocations,
            "wall_clock_s": round(result.wall_clock_s, 4),
            "throughput_per_s": round(result.throughput_per_s, 1),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "client_p50_ms": round(float(np.percentile(client_times_ms, 50.0)), 3),
            "client_p95_ms": round(float(np.percentile(client_times_ms, 95.0)), 3),
            "cold_start_rate": round(result.cold_start_rate, 5),
            "peak_in_flight": result.peak_in_flight,
        },
    )


def test_workload_engine_throughput_100k(benchmark, simulation_config):
    platform = create_platform(Provider.AWS, simulation_config)
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    # Size the window so the Poisson process lands close to 100k arrivals,
    # then trim to exactly 100k for a stable denominator.
    duration_s = 1.02 * TRACE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=simulation_config.seed
    )
    assert len(trace) >= TRACE_INVOCATIONS
    trace = WorkloadTrace(list(trace)[:TRACE_INVOCATIONS])

    result = run_once(benchmark, lambda: platform.run_workload(trace))

    print(
        f"\nsimulated {result.invocations} invocations "
        f"({result.simulated_span_s:.0f}s of virtual time) in {result.wall_clock_s:.2f}s wall clock "
        f"=> {result.throughput_per_s:,.0f} invocations/s, peak in-flight {result.peak_in_flight}"
    )
    _emit_bench_json(result)

    assert result.invocations == TRACE_INVOCATIONS
    # Under steady 50/s Poisson traffic almost every request hits a warm
    # sandbox; cold starts stay a small fraction of the stream.
    assert result.cold_start_rate < 0.05
    assert result.failure_count < result.invocations * 0.01
    # Throughput floor: the engine must stay orders of magnitude faster than
    # real time (50/s); a pool-scan regression would fail this immediately.
    # The indexed scheduler clears 20k/s with margin; the pre-index baseline
    # sat around 8k/s.
    assert result.throughput_per_s > 10_000.0


def test_workload_columnar_throughput_100k(benchmark):
    """Columnar streaming replay of the 100k trace: >= 3x scalar, >= 90k/s.

    The same trace is first replayed scalar (streaming mode) as the
    in-process reference — the speedup ratio is container-noise-robust in a
    way absolute figures are not — and the two streaming aggregates are
    asserted identical before any throughput claim.  The measured figures
    land in ``BENCH_workload_throughput.json`` as a ``columnar`` block
    (plus a flat ``columnar_throughput_per_s`` for the regression gate).
    """
    import json

    from repro.utils.io import atomic_write_json

    def build(columnar: bool):
        simulation = SimulationConfig(seed=42, columnar=columnar, log_retention=10_000)
        platform = create_platform(Provider.AWS, simulation)
        fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
        return platform, fname

    platform_scalar, fname = build(False)
    duration_s = 1.02 * TRACE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=42
    )
    trace = WorkloadTrace(list(trace)[:TRACE_INVOCATIONS])

    scalar = platform_scalar.run_workload(trace, keep_records=False)
    platform_columnar, _ = build(True)
    result = run_once(benchmark, lambda: platform_columnar.run_workload(trace, keep_records=False))

    # Bit-identity of the streaming aggregates (counters, sums, reservoir
    # percentile state) before any throughput claim.
    assert result.invocations == scalar.invocations == TRACE_INVOCATIONS
    assert result.cold_start_count == scalar.cold_start_count
    assert result.failure_count == scalar.failure_count
    assert result.total_cost_usd == scalar.total_cost_usd
    assert result.simulated_span_s == scalar.simulated_span_s
    assert result.peak_in_flight == scalar.peak_in_flight
    scalar_rows = {
        name: json.dumps(summary.__dict__, default=repr, sort_keys=True)
        for name, summary in scalar.streaming_summaries.items()
    }
    columnar_rows = {
        name: json.dumps(summary.__dict__, default=repr, sort_keys=True)
        for name, summary in result.streaming_summaries.items()
    }
    assert columnar_rows == scalar_rows

    speedup = result.throughput_per_s / scalar.throughput_per_s
    print(
        f"\ncolumnar streamed {result.invocations} invocations in {result.wall_clock_s:.2f}s "
        f"=> {result.throughput_per_s:,.0f}/s ({speedup:.1f}x the scalar streaming "
        f"{scalar.throughput_per_s:,.0f}/s)"
    )

    document = (
        json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        if BENCH_JSON.exists()
        else {"benchmark": "workload_throughput_100k"}
    )
    document["columnar"] = {
        "invocations": result.invocations,
        "wall_clock_s": round(result.wall_clock_s, 4),
        "throughput_per_s": round(result.throughput_per_s, 1),
        "scalar_streaming_throughput_per_s": round(scalar.throughput_per_s, 1),
        "speedup_vs_scalar_streaming": round(speedup, 2),
    }
    document["columnar_throughput_per_s"] = round(result.throughput_per_s, 1)
    atomic_write_json(BENCH_JSON, document)

    # Acceptance floors: the vectorized hot path must hold a 3x advantage
    # over the scalar streaming replay and clear 90k invocations/s outright
    # (measured 112-124k/s on the reference container).
    assert speedup >= 3.0
    assert result.throughput_per_s > 90_000.0


def _lazy_requests(fname: str, count: int, rate_per_s: float, seed: int):
    """Generate a Poisson request stream lazily — no trace materialisation."""
    rng = np.random.default_rng(seed)
    timestamp = 0.0
    for _ in range(count):
        timestamp += float(rng.exponential(1.0 / rate_per_s))
        yield InvocationRequest(
            function_name=fname,
            payload={},
            trigger=TriggerType.HTTP,
            submitted_at=timestamp,
        )


def test_workload_streaming_aggregation_1m(benchmark):
    """A 1M-invocation replay completes in streaming mode (keep_records=False).

    This target guards completion, throughput and the bounded provider log
    at full scale; the precise O(functions) memory bound is asserted by
    ``test_streaming_memory_is_o_functions`` below under tracemalloc, which
    is exact but ~10x slower per invocation, so it runs on a shorter stream.
    """
    simulation = SimulationConfig(seed=42, log_retention=10_000)
    platform = create_platform(Provider.AWS, simulation)
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    requests = _lazy_requests(fname, STREAMING_INVOCATIONS, rate_per_s=200.0, seed=42)

    result = run_once(benchmark, lambda: platform.run_workload(requests, keep_records=False))

    print(
        f"\nstreamed {result.invocations} invocations in {result.wall_clock_s:.2f}s wall clock "
        f"=> {result.throughput_per_s:,.0f} invocations/s, peak RSS {_peak_rss_mb():.0f} MB"
    )

    assert result.invocations == STREAMING_INVOCATIONS
    assert result.records == []
    summary = result.per_function()[fname]
    assert summary.invocations == STREAMING_INVOCATIONS
    assert summary.client_time is not None and summary.client_time.count == STREAMING_INVOCATIONS
    # log_retention bounds the provider-side log despite the 1M invocations.
    assert len(platform._state[fname].history) == 10_000
    # Sanity floor: streaming mode must not be dramatically slower than the
    # record-keeping path.
    assert result.throughput_per_s > 5_000.0


def test_streaming_memory_is_o_functions(benchmark):
    """tracemalloc audit: the streaming replay's python-heap peak is a few
    MB regardless of stream length, where the materialising path holds one
    ~0.5 kB record per invocation.  (tracemalloc is immune to the
    peak-RSS-already-raised-by-earlier-tests problem.)"""
    count = 100_000
    simulation = SimulationConfig(seed=7, log_retention=1_000)
    platform = create_platform(Provider.AWS, simulation)
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    requests = _lazy_requests(fname, count, rate_per_s=200.0, seed=7)

    tracemalloc.start()
    result = run_once(benchmark, lambda: platform.run_workload(requests, keep_records=False))
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    peak_mb = peak_bytes / (1024.0 * 1024.0)
    print(f"\nstreamed {result.invocations} invocations, python heap peak {peak_mb:.1f} MB")
    assert result.invocations == count
    assert result.records == []
    # One hundred thousand materialised records would be tens of MB; the
    # streaming accumulators stay in single digits.
    assert peak_mb < 16.0
