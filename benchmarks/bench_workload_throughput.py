"""Simulator throughput: invocations simulated per wall-clock second.

Not a paper figure — this target measures the *reproduction itself*: how
fast the event-queue engine (:mod:`repro.workload.engine`) pushes a
100 000-invocation Poisson trace through a simulated provider.  The rate is
the number a capacity plan needs ("a day of production traffic replays in
N seconds") and guards against accidental O(n^2) regressions in the
container-pool bookkeeping.
"""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider, SimulationConfig
from repro.simulator.providers import create_platform
from repro.experiments.base import deploy_benchmark
from repro.workload import PoissonArrivals, WorkloadTrace

TRACE_INVOCATIONS = 100_000
ARRIVAL_RATE_PER_S = 50.0


def test_workload_engine_throughput_100k(benchmark, simulation_config):
    platform = create_platform(Provider.AWS, simulation_config)
    fname = deploy_benchmark(platform, "dynamic-html", memory_mb=256)
    # Size the window so the Poisson process lands close to 100k arrivals,
    # then trim to exactly 100k for a stable denominator.
    duration_s = 1.02 * TRACE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        fname, PoissonArrivals(ARRIVAL_RATE_PER_S), duration_s=duration_s, rng=simulation_config.seed
    )
    assert len(trace) >= TRACE_INVOCATIONS
    trace = WorkloadTrace(list(trace)[:TRACE_INVOCATIONS])

    result = run_once(benchmark, lambda: platform.run_workload(trace))

    print(
        f"\nsimulated {result.invocations} invocations "
        f"({result.simulated_span_s:.0f}s of virtual time) in {result.wall_clock_s:.2f}s wall clock "
        f"=> {result.throughput_per_s:,.0f} invocations/s, peak in-flight {result.peak_in_flight}"
    )

    assert result.invocations == TRACE_INVOCATIONS
    # Under steady 50/s Poisson traffic almost every request hits a warm
    # sandbox; cold starts stay a small fraction of the stream.
    assert result.cold_start_rate < 0.05
    assert result.failure_count < result.invocations * 0.01
    # Throughput floor: the engine must stay orders of magnitude faster than
    # real time (50/s); a pool-scan regression would fail this immediately.
    assert result.throughput_per_s > 1_000.0
