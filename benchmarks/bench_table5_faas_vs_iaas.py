"""Table 5: warm benchmark performance on AWS Lambda versus an EC2 t2.micro VM."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.faas_vs_iaas import FaasVsIaasExperiment
from repro.reporting.tables import format_table


def test_table5_faas_vs_iaas(benchmark, experiment_config, simulation_config):
    experiment = FaasVsIaasExperiment(config=experiment_config, simulation=simulation_config)
    result = run_once(
        benchmark,
        lambda: experiment.run(benchmarks=("uploader", "thumbnailer", "compression", "image-recognition", "graph-bfs")),
    )
    rows = result.to_rows()
    print("\n" + format_table(rows))

    for row in rows:
        # FaaS is slower than the VM with local data (overheads of 1.4x-4x in
        # the paper), and equalising storage narrows the gap for the
        # storage-bound benchmarks (for compute-only kernels such as graph-bfs
        # the two IaaS deployments are statistically identical).
        assert row["overhead"] > 1.0
        assert row["overhead_s3"] <= row["overhead"] * 1.1
        assert 1.0 <= row["overhead"] < 8.0
        # The VM can serve a substantial request rate at full utilisation.
        assert row["iaas_local_req_per_hour"] >= row["iaas_s3_req_per_hour"] * 0.9

    by_name = {row["benchmark"]: row for row in rows}
    # compression is the slowest benchmark in wall-clock terms on every deployment.
    assert by_name["compression"]["faas_s"] == max(row["faas_s"] for row in rows)
