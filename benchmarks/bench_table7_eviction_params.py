"""Table 7: the parameter space of the container-eviction experiment."""

from __future__ import annotations

from conftest import run_once

from repro.config import Language, Provider
from repro.experiments.eviction_model import TABLE7_PARAMETERS, EvictionModelExperiment, EvictionParameters
from repro.reporting.tables import format_table


def test_table7_parameter_space_is_exercised(benchmark, experiment_config, simulation_config):
    """Sweep the extreme points of every Table 7 dimension and show that the
    observed eviction behaviour is identical — the policy is agnostic to
    memory, runtime, language and code-package size."""
    experiment = EvictionModelExperiment(config=experiment_config, simulation=simulation_config)
    extremes = [
        EvictionParameters(d_init=20, delta_t_s=761.0, memory_mb=128, language=Language.PYTHON,
                           code_package_mb=0.008, function_time_s=1.0),
        EvictionParameters(d_init=20, delta_t_s=761.0, memory_mb=1536, language=Language.PYTHON,
                           code_package_mb=0.008, function_time_s=1.0),
        EvictionParameters(d_init=20, delta_t_s=761.0, memory_mb=128, language=Language.NODEJS,
                           code_package_mb=0.008, function_time_s=1.0),
        EvictionParameters(d_init=20, delta_t_s=761.0, memory_mb=128, language=Language.PYTHON,
                           code_package_mb=250.0, function_time_s=1.0),
        EvictionParameters(d_init=20, delta_t_s=761.0, memory_mb=128, language=Language.PYTHON,
                           code_package_mb=0.008, function_time_s=10.0),
    ]

    def run():
        return [experiment.observe(Provider.AWS, parameters) for parameters in extremes]

    observations = run_once(benchmark, run)
    rows = [obs.to_row() for obs in observations]
    print("\n# Table 7 parameter ranges:", TABLE7_PARAMETERS)
    print(format_table(rows))

    # Paper parameter ranges are what the experiment declares.
    assert TABLE7_PARAMETERS["d_init"] == (1, 20)
    assert TABLE7_PARAMETERS["delta_t_s"] == (1, 1600)
    assert TABLE7_PARAMETERS["memory_mb"] == (128, 1536)
    assert TABLE7_PARAMETERS["sleep_time_s"] == (1, 10)

    # After two full periods, every variation keeps exactly 20 / 2^2 = 5 warm
    # containers: the eviction policy ignores all of these function properties.
    warm_counts = {obs.warm_containers for obs in observations}
    assert warm_counts == {5}
