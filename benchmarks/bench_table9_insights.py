"""Table 9: the insight summary, cross-checked against quick simulator runs."""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.config import Provider, StartType
from repro.experiments.base import deploy_benchmark
from repro.reporting.tables import format_table, table9_insights
from repro.simulator.providers import create_platform


def test_table9_insight_summary(benchmark, simulation_config):
    rows = run_once(benchmark, table9_insights)
    print("\n" + format_table(rows))
    assert len(rows) == 15
    # Every insight names the experiment of this reproduction that covers it.
    assert all(row["experiment"] for row in rows)
    # Eight of the fifteen results are insights not reported by prior work.
    novel = [row for row in rows if row["novel"]]
    assert len(novel) == 8


def test_table9_headline_claims_hold_in_the_simulator(benchmark, simulation_config):
    """Spot-check two headline insights directly against the platforms."""

    def run():
        measurements = {}
        for provider in (Provider.AWS, Provider.GCP):
            platform = create_platform(provider, simulation=simulation_config)
            fname = deploy_benchmark(platform, "thumbnailer", memory_mb=2048)
            platform.invoke(fname, payload={})
            times = []
            while len(times) < 20:
                record = platform.invoke(fname, payload={})
                if record.success and record.start_type is StartType.WARM:
                    times.append(record.provider_time_s)
            measurements[provider] = float(np.median(times))
        return measurements

    measurements = run_once(benchmark, run)
    print("\nwarm provider-time medians:", {p.value: round(v, 4) for p, v in measurements.items()})
    # Insight 1: AWS Lambda achieves the best performance.
    assert measurements[Provider.AWS] < measurements[Provider.GCP]
