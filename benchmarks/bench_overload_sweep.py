"""Overload sweep: providers under concurrency pressure (beyond Table 2).

Not a paper figure — Table 2 stops at the *static* concurrency limits;
this target sweeps the dynamic consequences with the overload subsystem
(:mod:`repro.concurrency`): the same bursty-sync + queue-async trace is
replayed at tightening reserved-concurrency caps on every provider, and
the sweep reports throttle/drop rates, client retries, admission-queue
delay, goodput and cost per cell.

Besides the printed table, the target writes
``benchmarks/BENCH_overload_sweep.json`` — machine-readable sweep rows
plus the replay wall clock, consumed by the CI perf-regression gate
(``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.config import Provider
from repro.experiments.overload import OverloadExperiment

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_overload_sweep.json"

PROVIDERS = (Provider.AWS, Provider.GCP, Provider.AZURE)
RESERVED_LEVELS: tuple[int | None, ...] = (2, 8, 32, None)


def _emit_bench_json(result, wall_clock_s: float) -> None:
    cells = len(result.points)
    total_invocations = result.trace_invocations * cells
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "overload_sweep",
            "cells": cells,
            "trace_invocations": result.trace_invocations,
            "wall_clock_s": round(wall_clock_s, 4),
            "throughput_per_s": round(total_invocations / wall_clock_s, 1)
            if wall_clock_s > 0
            else 0.0,
            "rows": result.to_rows(),
        },
    )


def test_overload_sweep(benchmark, experiment_config, simulation_config):
    experiment = OverloadExperiment(config=experiment_config, simulation=simulation_config)
    wall_start = time.perf_counter()
    result = run_once(
        benchmark,
        lambda: experiment.run(providers=PROVIDERS, reserved_levels=RESERVED_LEVELS),
    )
    wall_clock_s = time.perf_counter() - wall_start

    from repro.reporting.tables import format_table

    print()
    print(format_table(result.to_rows()))
    _emit_bench_json(result, wall_clock_s)

    assert result.trace_invocations > 0
    for provider in PROVIDERS:
        points = result.by_provider(provider)
        assert [p.reserved_concurrency for p in points] == list(RESERVED_LEVELS)
        by_level = {p.reserved_concurrency: p for p in points}
        # Tightening the cap can only shed more work: the tightest level
        # throttles at least as much as the loosest, and an effectively
        # uncapped replay (account limit only) sheds next to nothing.
        assert by_level[2].throttled >= by_level[32].throttled
        assert by_level[2].throttle_rate > 0.10, provider
        uncapped = by_level[None]
        assert uncapped.throttle_rate < 0.05, provider
        # Requests are conserved: every one resolves exactly once.
        for point in points:
            assert (
                point.executed + point.throttled + point.dropped == point.invocations
            )
        # Shedding work cannot cost more: billed work shrinks with the cap
        # (throttles and drops are free; retries bill once when admitted).
        assert by_level[2].cost_usd <= uncapped.cost_usd * 1.001
