"""Fault-storm benchmark: metastable failure and breaker-driven recovery.

Not a paper figure — the source paper measures healthy platforms; this
target injects a full outage window (:mod:`repro.faults`) into a
capacity-limited replay and contrasts two clients (:mod:`repro.resilience`):

* the **naive** client (unjittered tight-capped retry ladder, deep budget,
  per-attempt staleness resubmission, no breaker) drives the platform into
  a *metastable failure* state — goodput stays collapsed long after the
  outage clears, sustained purely by retry amplification;
* the **resilient** client (circuit breaker + full-jitter exponential
  backoff) sheds load during the outage and recovers to the pre-fault
  goodput almost immediately.

Besides the printed table, the target writes
``benchmarks/BENCH_fault_storm.json`` — recovery ratios and per-variant
rows plus the replay wall clock, consumed by the CI perf-regression gate
(``benchmarks/check_regression.py``).  The run also re-executes the naive
variant sharded (``workers=4``) and asserts bit-identity with the serial
replay — the chaos-equivalence guarantee, at benchmark scale.
"""

from __future__ import annotations

import time
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.experiments.resilience import ResilienceExperiment

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_fault_storm.json"

#: Acceptance thresholds: the naive client must stay collapsed after the
#: outage (metastability), the resilient client must recover.
NAIVE_RECOVERY_CEILING = 0.5
RESILIENT_RECOVERY_FLOOR = 0.9

EQUIVALENCE_WORKERS = 4


def _emit_bench_json(result, wall_clock_s: float) -> None:
    total_invocations = sum(v.invocations for v in result.variants)
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "fault_storm",
            "duration_s": result.duration_s,
            "outage_start_s": result.outage_start_s,
            "outage_end_s": result.outage_end_s,
            "invocations": total_invocations,
            "wall_clock_s": round(wall_clock_s, 4),
            "throughput_per_s": round(total_invocations / wall_clock_s, 1)
            if wall_clock_s > 0
            else 0.0,
            "naive_recovery_ratio": round(result.variant("naive").recovery_ratio, 4),
            "resilient_recovery_ratio": round(
                result.variant("resilient").recovery_ratio, 4
            ),
            "variants": result.to_dict()["variants"],
        },
    )


def _variant_rows(result) -> list[dict]:
    rows = []
    for v in result.variants:
        rows.append(
            {
                "variant": v.name,
                "retry policy": v.retry_policy,
                "breaker": "yes" if v.breaker_enabled else "no",
                "requests": v.invocations,
                "executed": v.executed,
                "stale/failed": v.failures,
                "faulted": v.faulted,
                "short-circuited": v.short_circuited,
                "retries": v.retries,
                "pre goodput/s": f"{v.pre.goodput_per_s:.2f}",
                "post goodput/s": f"{v.post.goodput_per_s:.2f}",
                "recovery": f"{v.recovery_ratio:.2f}",
                "cost USD": f"{v.cost_usd:.4f}",
            }
        )
    return rows


def test_fault_storm(benchmark, experiment_config, simulation_config):
    experiment = ResilienceExperiment(
        config=experiment_config, simulation=simulation_config
    )
    wall_start = time.perf_counter()
    result = run_once(benchmark, experiment.run)
    wall_clock_s = time.perf_counter() - wall_start

    from repro.reporting.tables import format_table

    print()
    print(format_table(_variant_rows(result)))
    _emit_bench_json(result, wall_clock_s)

    naive = result.variant("naive")
    resilient = result.variant("resilient")
    # Both variants replay the identical trace and fault schedule.
    assert naive.invocations == resilient.invocations > 0
    # Requests are conserved: every one resolves exactly once.
    for v in result.variants:
        executed_failures = v.executed  # completed + failed (stale)
        assert (
            executed_failures + v.throttled + v.dropped + v.faulted + v.short_circuited
            == v.invocations
        ), v.name
    # The metastability contrast itself.
    assert naive.recovery_ratio <= NAIVE_RECOVERY_CEILING, naive.recovery_ratio
    assert resilient.recovery_ratio >= RESILIENT_RECOVERY_FLOOR, resilient.recovery_ratio
    # The breaker sheds during the outage; the naive client never does.
    assert resilient.short_circuited > 0
    assert naive.short_circuited == 0
    # Retry amplification is what sustains the naive collapse.
    assert naive.retries > resilient.retries

    # Chaos equivalence at benchmark scale: the same storm replayed through
    # the sharded path must be bit-identical to the serial result above —
    # simulation outputs only; the host-side replay block (wall clock)
    # legitimately differs between the two runs.
    sharded = experiment.run(workers=EQUIVALENCE_WORKERS)
    assert sharded.to_dict(include_replay=False) == result.to_dict(include_replay=False)
