"""Observability overhead: attaching observers must stay near-free.

Not a paper figure — this target guards the *pure observer* contract's
performance half (the correctness half — bit-identical replay — lives in
``tests/test_observe.py``).  The same 100 000-invocation Poisson trace as
``bench_workload_throughput`` replays three ways, interleaved round-robin
so machine noise hits every configuration equally:

* **reference** — the plain replay, no observability keywords at all;
* **detached** — every observability keyword passed explicitly as its
  disabled default (``observer=None``, ``timeseries=None``,
  ``profile=False``), timing the guard branches themselves;
* **attached** — a full :class:`~repro.observe.EventLog` plus a windowed
  time-series builder, the heaviest supported combination.

Each configuration keeps its best throughput over the rounds run so far
(min wall clock — the standard noise-robust estimator); like
``bench_chaos_replay``, rounds repeat from MIN up to MAX with an early
exit once both gates hold, because run-to-run noise on a busy runner
exceeds the 1% ceiling while min-over-rounds converges — and a genuine
regression still fails every time.  Two measurement controls keep the
comparison honest at the 1% scale:

* the configuration order **rotates** every round — three identical
  replays run back-to-back measure up to ~7% apart purely by position
  (frequency/thermal decay over a sustained burst), so a fixed order
  would bill the decay to whichever configuration runs last;
* each replay is timed with the cyclic **GC paused** (collect first,
  disable, re-enable after — exactly ``timeit``'s default).  Whether a
  replay crosses a generation threshold mid-run depends on allocation
  counts entirely unrelated to the observers, and one extra gen-2 sweep
  over 100k live records costs more than the whole observer hot path.

The gates: detached costs ≤ 1% and attached ≤ 10% against the
reference.  The measured throughputs land in
``benchmarks/BENCH_observability.json`` and are tracked by
``benchmarks/check_regression.py`` against ``baselines.json``.
"""

from __future__ import annotations

import gc
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.config import Provider
from repro.experiments.base import deploy_benchmark
from repro.observe import EventLog, TimeSeriesSpec
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals, WorkloadTrace

TRACE_INVOCATIONS = 100_000
ARRIVAL_RATE_PER_S = 50.0
MIN_ROUNDS = 2
#: Run-to-run noise on a busy runner reaches tens of percent while the
#: true attached cost is ~6%; min-over-rounds needs head-room to catch a
#: quiet window for every configuration.
MAX_ROUNDS = 10
DETACHED_BUDGET = 0.01
ATTACHED_BUDGET = 0.10

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_observability.json"


def _trace(simulation_config) -> WorkloadTrace:
    duration_s = 1.02 * TRACE_INVOCATIONS / ARRIVAL_RATE_PER_S
    trace = WorkloadTrace.synthesize(
        "dynamic-html-0",
        PoissonArrivals(ARRIVAL_RATE_PER_S),
        duration_s=duration_s,
        rng=simulation_config.seed,
    )
    assert len(trace) >= TRACE_INVOCATIONS
    return WorkloadTrace(list(trace)[:TRACE_INVOCATIONS])


def _fresh_platform(simulation_config):
    platform = create_platform(Provider.AWS, simulation_config)
    deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name="dynamic-html-0")
    return platform


def test_observer_overhead_100k(benchmark, simulation_config):
    trace = _trace(simulation_config)
    last_event_count = 0

    def reference():
        return _fresh_platform(simulation_config).run_workload(trace)

    def detached():
        return _fresh_platform(simulation_config).run_workload(
            trace, observer=None, timeseries=None, profile=False
        )

    def attached():
        nonlocal last_event_count
        log = EventLog()
        result = _fresh_platform(simulation_config).run_workload(
            trace, observer=log, timeseries=TimeSeriesSpec()
        )
        last_event_count = len(log)
        return result

    configurations = (("reference", reference), ("detached", detached), ("attached", attached))

    def interleaved_rounds():
        best = {name: 0.0 for name, _ in configurations}
        reference_result = None
        rounds = 0
        for round_index in range(MAX_ROUNDS):
            rounds = round_index + 1
            shift = round_index % len(configurations)
            for name, replay in configurations[shift:] + configurations[:shift]:
                gc.collect()
                gc.disable()
                try:
                    result = replay()
                finally:
                    gc.enable()
                assert result.invocations == TRACE_INVOCATIONS
                best[name] = max(best[name], result.throughput_per_s)
                if name == "reference":
                    reference_result = result
            if (
                rounds >= MIN_ROUNDS
                and 1.0 - best["detached"] / best["reference"] <= DETACHED_BUDGET
                and 1.0 - best["attached"] / best["reference"] <= ATTACHED_BUDGET
            ):
                break
        return best, reference_result, rounds

    best, reference_result, rounds = run_once(benchmark, interleaved_rounds)

    detached_overhead = 1.0 - best["detached"] / best["reference"]
    attached_overhead = 1.0 - best["attached"] / best["reference"]
    print(
        f"\nreference {best['reference']:,.0f}/s, "
        f"detached {best['detached']:,.0f}/s ({detached_overhead:+.2%}), "
        f"attached {best['attached']:,.0f}/s ({attached_overhead:+.2%}) "
        f"[{last_event_count} events collected, {rounds} round(s)]"
    )

    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "observability_overhead_100k",
            "invocations": TRACE_INVOCATIONS,
            "rounds": rounds,
            "reference_throughput_per_s": round(best["reference"], 1),
            "detached_throughput_per_s": round(best["detached"], 1),
            "attached_throughput_per_s": round(best["attached"], 1),
            "detached_overhead": round(detached_overhead, 4),
            "attached_overhead": round(attached_overhead, 4),
            "events_collected": last_event_count,
        },
    )

    # The lifecycle stream saw the whole replay (spans + container churn).
    assert last_event_count >= TRACE_INVOCATIONS
    assert reference_result is not None and reference_result.records
    # The pure-observer budgets: guard branches are free, and even the
    # heaviest attachment (typed events + windowed series) stays cheap.
    assert detached_overhead <= DETACHED_BUDGET, (
        f"detached observability hooks cost {detached_overhead:.2%} "
        f"(budget {DETACHED_BUDGET:.0%})"
    )
    assert attached_overhead <= ATTACHED_BUDGET, (
        f"attached observers cost {attached_overhead:.2%} (budget {ATTACHED_BUDGET:.0%})"
    )
