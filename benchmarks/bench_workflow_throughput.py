"""Workflow-replay throughput: composed invocations per wall-clock second.

Not a paper figure — this target measures the *workflow orchestration
subsystem* (:mod:`repro.workflows`): how fast a fan-out/fan-in DAG with
100 000+ constituent invocations replays through the event-queue engine in
streaming mode, and whether the critical-path accounting stays exact at
scale.  The rate guards against regressions in the feedback request source
(an accidental barrier or re-sort would crater it), and the tracemalloc
target pins the O(functions + in-flight executions) memory bound of
``keep_records=False``.

Besides the printed report, the 100k target writes
``benchmarks/BENCH_workflow_throughput.json`` — machine-readable
throughput, peak RSS and end-to-end latency percentiles, with the previous
run's figures carried along as ``previous`` so the perf trajectory is
tracked across PRs.
"""

from __future__ import annotations

import resource
import tracemalloc
from pathlib import Path

import pytest

from conftest import emit_bench_json, run_once

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.simulator.providers import create_platform
from repro.workload import PoissonArrivals
from repro.workflows import standard_workflow, synthesize_workflow_arrivals

#: fanout DAG: split + fan_out map tasks + collect = 10 invocations/execution.
FAN_OUT = 8
EXECUTIONS = 10_000
CONSTITUENT_INVOCATIONS = EXECUTIONS * (FAN_OUT + 2)
ARRIVAL_RATE_PER_S = 20.0

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_workflow_throughput.json"


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MB (Linux: ru_maxrss is kB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _deployed_platform(simulation: SimulationConfig):
    platform = create_platform(Provider.AWS, simulation)
    spec, functions = standard_workflow("fanout", fan_out=FAN_OUT)
    for function in functions:
        deploy_benchmark(
            platform,
            function.benchmark,
            memory_mb=function.memory_mb,
            function_name=function.function_name,
        )
    return platform, spec


def _emit_bench_json(result, summary) -> None:
    """Write the machine-readable perf record, keeping the previous run."""
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "workflow_throughput_100k",
            "executions": result.execution_count,
            "constituent_invocations": result.invocation_total,
            "wall_clock_s": round(result.wall_clock_s, 4),
            "throughput_per_s": round(result.throughput_per_s, 1),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "e2e_p50_ms": round(summary.end_to_end.median * 1000.0, 3),
            "e2e_p95_ms": round(summary.end_to_end.percentiles[95.0] * 1000.0, 3),
            "cold_start_rate": round(result.cold_start_rate, 5),
            "peak_in_flight": result.peak_in_flight,
            "compute_share": round(
                result.compute_s_total
                / (
                    result.compute_s_total
                    + result.cold_start_s_total
                    + result.trigger_propagation_s_total
                ),
                4,
            ),
        },
    )


def test_workflow_replay_throughput_100k(benchmark):
    """A 100k-constituent-invocation fan-out/fan-in replay in streaming mode."""
    simulation = SimulationConfig(seed=42, log_retention=10_000)
    platform, spec = _deployed_platform(simulation)
    arrivals = synthesize_workflow_arrivals(
        spec,
        PoissonArrivals(ARRIVAL_RATE_PER_S),
        duration_s=1.02 * EXECUTIONS / ARRIVAL_RATE_PER_S,
        rng=42,
    )
    assert len(arrivals) >= EXECUTIONS
    arrivals = arrivals[:EXECUTIONS]

    result = run_once(
        benchmark, lambda: platform.run_workflows(arrivals, keep_records=False)
    )

    print(
        f"\nreplayed {result.execution_count} workflow executions "
        f"({result.invocation_total} constituent invocations, "
        f"{result.simulated_span_s:.0f}s of virtual time) in {result.wall_clock_s:.2f}s "
        f"wall clock => {result.throughput_per_s:,.0f} invocations/s, "
        f"peak in-flight {result.peak_in_flight}"
    )
    summary = result.per_workflow()["fanout"]
    _emit_bench_json(result, summary)

    assert result.execution_count == EXECUTIONS
    assert result.invocation_total == CONSTITUENT_INVOCATIONS
    assert result.executions == []  # streaming mode keeps no per-execution state
    # Critical-path components must account for the whole end-to-end time:
    # the three buckets tile every execution's interval by construction.
    components = (
        result.compute_s_total + result.cold_start_s_total + result.trigger_propagation_s_total
    )
    assert components == pytest.approx(result.end_to_end_s_total, rel=1e-9)
    # Steady 20/s arrivals keep sandboxes warm; trigger edges always cost
    # something, so propagation is a visible but minority share.
    assert result.cold_start_rate < 0.05
    assert result.trigger_propagation_s_total > 0
    # Throughput floor: constituent invocations must replay within the same
    # order of magnitude as flat traces (the workflow layer adds one
    # hash-seeded generator per edge, not a new hot path).
    assert result.throughput_per_s > 5_000.0


def test_workflow_streaming_memory_is_bounded(benchmark):
    """tracemalloc audit: streaming workflow replay holds per-workflow
    accumulators and in-flight execution state only — the python-heap peak
    stays flat as the execution count grows."""
    executions = 5_000
    simulation = SimulationConfig(seed=7, log_retention=1_000)
    platform, spec = _deployed_platform(simulation)
    arrivals = synthesize_workflow_arrivals(
        spec,
        PoissonArrivals(ARRIVAL_RATE_PER_S),
        duration_s=1.05 * executions / ARRIVAL_RATE_PER_S,
        rng=7,
    )[:executions]

    tracemalloc.start()
    result = run_once(
        benchmark, lambda: platform.run_workflows(arrivals, keep_records=False)
    )
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    peak_mb = peak_bytes / (1024.0 * 1024.0)
    print(
        f"\nstreamed {result.execution_count} executions "
        f"({result.invocation_total} invocations), python heap peak {peak_mb:.1f} MB"
    )
    assert result.execution_count == executions
    # Materialised execution results would be tens of MB at this scale; the
    # arrival list itself dominates the bounded streaming state.
    assert peak_mb < 24.0
