"""Figure 6: invocation overhead versus payload size (cold and warm, three providers)."""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider, StartType
from repro.experiments.invocation_overhead import InvocationOverheadExperiment
from repro.reporting.figures import figure6_invocation_overhead_series
from repro.reporting.tables import format_table


def test_figure6_invocation_overhead(benchmark, experiment_config, simulation_config):
    experiment = InvocationOverheadExperiment(config=experiment_config, simulation=simulation_config)
    result = run_once(
        benchmark,
        lambda: experiment.run(providers=(Provider.AWS, Provider.GCP, Provider.AZURE), repetitions=6),
    )
    rows = figure6_invocation_overhead_series(result)
    print("\n" + format_table(rows))

    # Warm latencies are consistent and depend linearly on the payload size on
    # every provider (adjusted R^2 of 0.89-0.99 in the paper).
    for provider in (Provider.AWS, Provider.GCP, Provider.AZURE):
        warm_model = result.model(provider, StartType.WARM)
        assert warm_model.fit.adjusted_r_squared > 0.85
        assert warm_model.latency_per_mb_s > 0

    # Cold invocations on AWS also follow the linear model...
    aws_cold = result.model(Provider.AWS, StartType.COLD)
    assert aws_cold.fit.adjusted_r_squared > 0.8

    # ... while cold invocations on Azure and GCP are erratic and cannot be
    # explained by payload size alone.
    gcp_cold = result.model(Provider.GCP, StartType.COLD)
    azure_cold = result.model(Provider.AZURE, StartType.COLD)
    assert min(gcp_cold.fit.adjusted_r_squared, azure_cold.fit.adjusted_r_squared) < aws_cold.fit.adjusted_r_squared

    # Cold invocation latencies dominate warm ones at every payload size.
    for provider in (Provider.AWS, Provider.GCP, Provider.AZURE):
        warm = {o.payload_bytes: o.median_latency_s for o in result.series(provider, StartType.WARM)}
        cold = {o.payload_bytes: o.median_latency_s for o in result.series(provider, StartType.COLD)}
        shared = set(warm) & set(cold)
        assert shared
        assert sum(cold[p] > warm[p] for p in shared) >= len(shared) - 1
