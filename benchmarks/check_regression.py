"""CI perf-regression gate: compare emitted BENCH_*.json to baselines.

Every benchmark target writes a machine-readable ``BENCH_<name>.json``
(smoke throughputs, the 100k trace/workflow replays, the 1M sharded
replay, the overload sweep).  This script compares the figures found in
those files against the *committed* baselines
(``benchmarks/baselines.json``) with a relative tolerance (default ±25%)
and fails the build on regression:

* ``direction: "higher"`` metrics (throughputs) fail when the current
  value falls below ``baseline * (1 - tolerance)``;
* ``direction: "lower"`` metrics (wall clocks, peak RSS) fail when the
  current value rises above ``baseline * (1 + tolerance)``.

The committed baseline values are deliberately conservative (well under
the throughput this repository's 1-core reference container measures), so
the ±25% band flags real order-of-magnitude breakage without flaking on
slower CI runners.  After an intentional performance change, refresh them
with ``--write-baseline`` and commit the diff — exactly like the golden
fixtures.

A ``BENCH_*.json`` whose benchmark name the baselines file does not know
is a **hard error**, not a silent skip — an ungated benchmark is a gate
that can never fire, and historically that is exactly how new benchmarks
dodged the regression gate for several releases.  When adding a benchmark
intentionally, either commit its baseline entry (``--write-baseline``
after adding it to ``GATED_METRICS``) or pass ``--allow-new`` for the one
run that bootstraps it.

Exit status: 0 when every gated metric is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path
from typing import Mapping

BENCH_DIR = Path(__file__).resolve().parent
DEFAULT_BASELINES = BENCH_DIR / "baselines.json"

#: Metrics gated when ``--write-baseline`` synthesizes a fresh file:
#: benchmark name -> (metric, direction) pairs.  "higher" = bigger is
#: better (throughput); "lower" = smaller is better (wall clock, memory).
#:
#: Two tiers belong here.  (1) Benchmarks CI actually *re-runs*
#: (bench-smoke, bench-overload, bench-throughput, ... in the Makefile
#: ``ci`` chain): the gate compares a fresh measurement against the
#: committed baseline every run.  (2) Committed-artifact benchmarks
#: (``population``): too long for the CI chain, their ``BENCH_*.json``
#: is refreshed manually (``make bench-population``) and committed — the
#: gate then compares the *artifact under review* against the baseline,
#: so a PR committing a regressed refresh fails CI even though CI never
#: re-measures.  What earns neither tier is a benchmark whose artifact
#: is not committed and never re-run — that is why
#: ``parallel_replay_streaming_1m`` (a multi-minute target run via
#: ``make bench`` only, artifact uncommitted) is not gated.
GATED_METRICS: dict[str, tuple[tuple[str, str], ...]] = {
    "smoke_replay": (
        ("trace_throughput_per_s", "higher"),
        ("workflow_throughput_per_s", "higher"),
        ("sharded_throughput_per_s", "higher"),
        ("overload_throughput_per_s", "higher"),
        ("fault_storm_throughput_per_s", "higher"),
        ("chaos_recovery_throughput_per_s", "higher"),
        ("columnar_throughput_per_s", "higher"),
    ),
    "workload_throughput_100k": (
        ("throughput_per_s", "higher"),
        ("peak_rss_mb", "lower"),
        ("columnar_throughput_per_s", "higher"),
    ),
    "workflow_throughput_100k": (
        ("throughput_per_s", "higher"),
        ("peak_rss_mb", "lower"),
    ),
    "overload_sweep": (("throughput_per_s", "higher"),),
    "fault_storm": (("throughput_per_s", "higher"),),
    "chaos_replay": (
        ("clean_supervised_throughput_per_s", "higher"),
        ("recovery_wall_clock_s", "lower"),
    ),
    "observability_overhead_100k": (
        ("detached_throughput_per_s", "higher"),
        ("attached_throughput_per_s", "higher"),
    ),
    "population": (
        ("throughput_per_s", "higher"),
        ("parent_peak_rss_mb", "lower"),
    ),
}

#: Benchmarks that emit a BENCH json but are *deliberately* ungated — the
#: explicit counterpart of the GATED_METRICS note above.  CI only runs
#: ``make bench``-tier targets occasionally, so their committed artifacts
#: would be compared against baselines derived from themselves.  Anything
#: not listed here and not in the baselines file is a hard error.
UNGATED: frozenset[str] = frozenset({"parallel_replay_streaming_1m"})

#: Headroom factor applied when synthesizing baselines from measured
#: figures: the committed baseline is ``measured * factor`` for "higher"
#: metrics (and ``measured / factor`` for "lower" ones), so the effective
#: floor after the ±25% tolerance sits far from run-to-run noise while
#: still catching a genuine ≥25%-of-baseline regression.
BASELINE_HEADROOM = 0.5


def load_current_metrics(bench_dir: Path) -> dict[str, dict]:
    """Read every ``BENCH_*.json`` in ``bench_dir``, keyed by benchmark name."""
    metrics: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise SystemExit(f"unreadable benchmark record {path}: {error}")
        name = document.get("benchmark", path.stem.removeprefix("BENCH_"))
        metrics[name] = document
    return metrics


def compare(
    current: Mapping[str, Mapping],
    baselines: Mapping,
    tolerance: float | None = None,
    allow_new: bool = False,
) -> list[str]:
    """Return the list of gate failures (empty = within tolerance).

    ``baselines`` is the parsed baselines document; ``tolerance`` overrides
    its ``tolerance`` field when given.  A benchmark present in ``current``
    but absent from the baselines is a failure unless ``allow_new``.
    """
    if tolerance is None:
        tolerance = float(baselines.get("tolerance", 0.25))
    failures: list[str] = []
    unknown = sorted(set(current) - set(baselines.get("benchmarks", {})) - UNGATED)
    if unknown and not allow_new:
        for name in unknown:
            failures.append(
                f"{name}: BENCH json has no baseline entry — every emitted "
                f"benchmark must be gated (add it to GATED_METRICS and "
                f"baselines.json, or pass --allow-new to bootstrap it)"
            )
    for bench_name, gated in baselines.get("benchmarks", {}).items():
        document = current.get(bench_name)
        if document is None:
            failures.append(f"{bench_name}: BENCH json missing (benchmark not run?)")
            continue
        for metric, spec in gated.items():
            baseline = float(spec["baseline"])
            direction = spec.get("direction", "higher")
            value = document.get(metric)
            if value is None:
                failures.append(f"{bench_name}.{metric}: metric missing from BENCH json")
                continue
            value = float(value)
            if direction == "higher":
                floor = baseline * (1.0 - tolerance)
                if value < floor:
                    failures.append(
                        f"{bench_name}.{metric}: {value:,.1f} < floor {floor:,.1f} "
                        f"(baseline {baseline:,.1f}, tolerance {tolerance:.0%})"
                    )
            elif direction == "lower":
                ceiling = baseline * (1.0 + tolerance)
                if value > ceiling:
                    failures.append(
                        f"{bench_name}.{metric}: {value:,.1f} > ceiling {ceiling:,.1f} "
                        f"(baseline {baseline:,.1f}, tolerance {tolerance:.0%})"
                    )
            else:
                failures.append(f"{bench_name}.{metric}: unknown direction {direction!r}")
    return failures


def write_baseline(current: Mapping[str, Mapping], path: Path, tolerance: float) -> None:
    """Synthesize a fresh baselines file from the current measurements."""
    benchmarks: dict[str, dict] = {}
    for bench_name, gated in GATED_METRICS.items():
        document = current.get(bench_name)
        if document is None:
            continue
        entries = {}
        for metric, direction in gated:
            value = document.get(metric)
            if value is None:
                continue
            baseline = (
                float(value) * BASELINE_HEADROOM
                if direction == "higher"
                else float(value) / BASELINE_HEADROOM
            )
            entries[metric] = {"baseline": round(baseline, 1), "direction": direction}
        if entries:
            benchmarks[bench_name] = entries
    payload = {
        "_comment": (
            "Committed perf baselines for benchmarks/check_regression.py. "
            "Values are deliberately conservative (headroom applied to the "
            "reference container's measurements); regenerate with "
            "`python benchmarks/check_regression.py --write-baseline` after "
            "an intentional performance change and commit the diff."
        ),
        "tolerance": tolerance,
        "benchmarks": benchmarks,
    }
    # Atomic publish (tmp + rename): an interrupted --write-baseline must
    # never leave a truncated baselines file for the next CI run to parse.
    # Inlined rather than imported from repro.utils.io — this script runs
    # standalone, without PYTHONPATH=src.
    handle, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            tmp.write(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="CI perf-regression gate")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINES, help="baselines JSON path"
    )
    parser.add_argument(
        "--bench-dir", type=Path, default=BENCH_DIR, help="directory of BENCH_*.json files"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative tolerance override (default: the baselines file's, 0.25)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baselines file from the current BENCH_*.json figures",
    )
    parser.add_argument(
        "--allow-new",
        action="store_true",
        help="tolerate BENCH_*.json files without a baseline entry "
        "(bootstrap escape hatch for a freshly added benchmark)",
    )
    args = parser.parse_args(argv)

    current = load_current_metrics(args.bench_dir)
    if args.write_baseline:
        write_baseline(current, args.baseline, args.tolerance if args.tolerance is not None else 0.25)
        print(f"baselines written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"FAIL: baselines file {args.baseline} missing")
        return 1
    baselines = json.loads(args.baseline.read_text(encoding="utf-8"))
    failures = compare(current, baselines, tolerance=args.tolerance, allow_new=args.allow_new)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    gated = sum(len(v) for v in baselines.get("benchmarks", {}).values())
    print(f"check-regression: OK ({gated} gated metrics within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
