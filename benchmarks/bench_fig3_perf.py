"""Figure 3: warm performance of SeBS applications versus memory on AWS/GCP/Azure."""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.config import Provider
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.figures import figure3_performance_series
from repro.reporting.tables import format_table

#: Benchmarks shown in Figure 3 with the memory range they are deployed at.
FIGURE3_BENCHMARKS = {
    "uploader": (128, 1024, 3008),
    "thumbnailer": (128, 1024, 3008),
    "compression": (256, 1024, 3008),
    "image-recognition": (512, 1024, 3008),
    "graph-bfs": (128, 1024, 3008),
}


@pytest.mark.parametrize("benchmark_name,memory_sizes", sorted(FIGURE3_BENCHMARKS.items()))
def test_figure3_performance(benchmark, experiment_config, simulation_config, benchmark_name, memory_sizes):
    experiment = PerfCostExperiment(config=experiment_config, simulation=simulation_config)
    result = run_once(
        benchmark,
        lambda: experiment.run(
            benchmark_name,
            providers=(Provider.AWS, Provider.GCP, Provider.AZURE),
            memory_sizes=memory_sizes,
        ),
    )
    rows = figure3_performance_series(result)
    print(f"\n# Figure 3 — {benchmark_name}")
    print(format_table(rows))

    aws = {r["memory_mb"]: r for r in rows if r["provider"] == "aws"}
    gcp = {r["memory_mb"]: r for r in rows if r["provider"] == "gcp"}

    # Execution time decreases with the memory allocation until a plateau.
    aws_sizes = sorted(k for k in aws if isinstance(k, int))
    assert aws[aws_sizes[0]]["provider_time_median_s"] > aws[aws_sizes[-1]]["provider_time_median_s"]

    # AWS Lambda achieves the best performance of the viable configurations.
    best_aws = min(r["provider_time_median_s"] for r in aws.values())
    if gcp:
        best_gcp = min(r["provider_time_median_s"] for r in gcp.values())
        assert best_aws <= best_gcp * 1.05

    # I/O-bound benchmarks show the widest whisker ranges (Section 6.2 Q3);
    # the spread is most visible at small allocations where storage bandwidth
    # dominates the execution time.
    if benchmark_name in ("uploader", "compression"):
        low = aws[aws_sizes[0]]
        assert low["client_time_p98_s"] > 1.2 * low["client_time_median_s"]
