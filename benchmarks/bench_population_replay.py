"""Million-function population replay: the ROADMAP item 2 scale-out.

The paper's experiments drive a handful of deployments; production FaaS
schedulers see millions of functions with Zipf popularity, diurnal tenants
and correlated bursts.  This target replays a **1M-function synthetic
population** (:mod:`repro.population`) through the sharded + columnar
streaming path: ≥10M invocations, recipe shards that synthesize their own
arrivals (the parent process never materialises a request), and per-tenant
cost attribution folded from the merged streaming summaries.

Two properties are asserted, not just measured:

* **scale** — 1M planned functions, ≥10M replayed invocations;
* **O(functions) parent memory** — the parent's peak RSS is recorded and
  gated; it holds the shard plan (one int per member) and the merged
  per-function accumulators, never the invocation stream.

``BENCH_population.json`` records throughput, parent peak RSS and the
top-tenant spend attribution; ``benchmarks/check_regression.py`` gates the
committed artifact against ``baselines.json``.  This is a multi-minute
target (like ``bench_parallel_replay``), so CI gates the committed artifact
rather than re-running it; refresh with ``make bench-population`` after an
intentional change and commit the diff.
"""

from __future__ import annotations

import resource
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.config import Provider, SimulationConfig
from repro.population import PopulationSpec, replay_population
from repro.simulator.providers import create_platform

FUNCTIONS = 1_000_000
DURATION_S = 1_000.0
AGGREGATE_RATE_PER_S = 10_500.0  # ~10.5M expected invocations
TARGET_INVOCATIONS = 10_000_000
WORKERS = 2
TOP_TENANTS = 10

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_population.json"


def _population() -> PopulationSpec:
    return PopulationSpec(
        n_functions=FUNCTIONS,
        duration_s=DURATION_S,
        aggregate_rate_per_s=AGGREGATE_RATE_PER_S,
        name="pop1m",
    )


def _platform():
    # Columnar streaming with a tight provider-log bound: at 10M invocations
    # unbounded per-function logs would dominate worker memory.
    return create_platform(
        Provider.AWS, SimulationConfig(seed=42, columnar=True, log_retention=8)
    )


def test_population_replay_1m_functions(benchmark):
    population = _population()

    result = run_once(
        benchmark,
        lambda: replay_population(
            _platform(),
            population,
            workers=WORKERS,
            top_tenants=TOP_TENANTS,
            profile=True,
        ),
    )

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    replay = result.result
    print(
        f"\npopulation replay: {result.functions_active:,}/{result.functions_total:,} "
        f"functions active, {result.invocations:,} invocations in "
        f"{replay.wall_clock_s:.1f}s ({result.throughput_per_s:,.0f}/s), "
        f"parent peak RSS {peak_rss_mb:,.0f} MB"
    )
    for spend in result.top_tenants[:3]:
        print(f"  {spend.tenant}: ${spend.cost_usd:.4f} over {spend.invocations:,} invocations")

    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "population",
            "functions": result.functions_total,
            "functions_active": result.functions_active,
            "invocations": result.invocations,
            "workers": WORKERS,
            "duration_s": DURATION_S,
            "wall_clock_s": round(replay.wall_clock_s, 2),
            "throughput_per_s": round(result.throughput_per_s, 1),
            "parent_peak_rss_mb": round(peak_rss_mb, 1),
            "cost_usd": round(result.total_cost_usd, 4),
            "profile": {
                name: round(seconds, 2) for name, seconds in replay.profile.phases.items()
            }
            if replay.profile is not None
            else None,
            "top_tenants": [spend.to_row() for spend in result.top_tenants],
        },
    )

    assert result.functions_total == FUNCTIONS
    assert result.invocations >= TARGET_INVOCATIONS
    assert len(result.top_tenants) == TOP_TENANTS
    # Attribution is ranked by spend and covers real traffic.
    spends = [spend.cost_usd for spend in result.top_tenants]
    assert spends == sorted(spends, reverse=True)
    assert all(spend.invocations > 0 for spend in result.top_tenants)
