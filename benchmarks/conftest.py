"""Shared fixtures of the benchmark harness.

Every file in this directory regenerates one table or figure of the paper
with ``pytest --benchmark-only``.  The experiments run against the simulated
providers with a reduced-but-representative sample count so that the whole
harness completes in minutes; pass ``--paper-scale`` to use the paper's
full N = 200 samples and 50-invocation batches.

Each target both *times* the experiment (via pytest-benchmark) and *prints*
the regenerated rows/series (run with ``-s`` to see them), and asserts the
qualitative shape the paper reports — who wins, by roughly what factor,
where the crossovers fall.
"""

from __future__ import annotations

import pytest

from repro.config import ExperimentConfig, SimulationConfig


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="use the paper's full sample counts (N=200, batches of 50)",
    )


@pytest.fixture(scope="session")
def experiment_config(request) -> ExperimentConfig:
    if request.config.getoption("--paper-scale"):
        return ExperimentConfig(samples=200, batch_size=50, seed=42)
    return ExperimentConfig(samples=30, batch_size=10, seed=42)


@pytest.fixture(scope="session")
def simulation_config() -> SimulationConfig:
    return SimulationConfig(seed=42)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit_bench_json(path, payload):
    """Write a machine-readable ``BENCH_*.json`` perf record to ``path``.

    The previous run's figures are carried along as ``previous`` (one
    generation, not a chain) so the perf trajectory is tracked across PRs.
    Shared by every emitting target so the dance cannot drift between
    copies; ``benchmarks/check_regression.py`` consumes the output.  The
    write is atomic (tmp + rename), so an interrupted benchmark can never
    leave a truncated artifact for the regression gate to choke on.
    """
    import json

    from repro.utils.io import atomic_write_json

    previous = None
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
            previous.pop("previous", None)
        except (OSError, ValueError):
            previous = None
    atomic_write_json(path, {**payload, "previous": previous})
