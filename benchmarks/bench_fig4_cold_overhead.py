"""Figure 4: cold-start overheads (cold/warm client-time ratios)."""

from __future__ import annotations

from conftest import run_once

from repro.config import Provider
from repro.experiments.perf_cost import PerfCostExperiment
from repro.reporting.figures import figure4_cold_overhead_series
from repro.reporting.tables import format_table


def _run(experiment_config, simulation_config):
    experiment = PerfCostExperiment(config=experiment_config, simulation=simulation_config)
    results = {}
    for name, sizes in (("image-recognition", (2048,)), ("compression", (2048,)), ("graph-bfs", (2048,))):
        results[name] = experiment.run(name, providers=(Provider.AWS, Provider.GCP), memory_sizes=sizes)
    return results


def test_figure4_cold_start_overheads(benchmark, experiment_config, simulation_config):
    results = run_once(benchmark, lambda: _run(experiment_config, simulation_config))
    rows = []
    for result in results.values():
        rows.extend(figure4_cold_overhead_series(result))
    print("\n" + format_table(rows))

    ratios = {(row["benchmark"], row["provider"]): row["median_ratio"] for row in rows}

    # image-recognition has the largest cold overhead: cold runs are several
    # times (up to ~10x) slower than warm ones due to the model download.
    assert ratios[("image-recognition", "aws")] > 3.0
    # compression, a long-running function, hides its cold start almost fully.
    assert ratios[("compression", "aws")] < 1.5
    assert ratios[("image-recognition", "aws")] > ratios[("graph-bfs", "aws")] > ratios[("compression", "aws")]
    # Every ratio is above one: cold is never faster than warm.
    assert all(value > 1.0 for value in ratios.values())


def test_figure4_gcp_highmem_cold_penalty(benchmark, experiment_config, simulation_config):
    """The previously unreported contrast: more memory helps AWS cold starts
    but hurts GCP cold starts (Section 6.2 Q2)."""
    experiment = PerfCostExperiment(config=experiment_config, simulation=simulation_config)

    def run():
        return {
            provider: experiment.run("graph-bfs", providers=(provider,), memory_sizes=(256, 2048))
            for provider in (Provider.AWS, Provider.GCP)
        }

    results = run_once(benchmark, run)
    overheads = {}
    for provider, result in results.items():
        for config in result.configs:
            overheads[(provider, config.memory_mb)] = config.cold_start_overhead().median_ratio
    print("\ncold/warm ratios:", {f"{p.value}@{m}MB": round(v, 2) for (p, m), v in overheads.items()})

    aws_change = overheads[(Provider.AWS, 2048)] / overheads[(Provider.AWS, 256)]
    gcp_change = overheads[(Provider.GCP, 2048)] / overheads[(Provider.GCP, 256)]
    # On GCP the relative cold-start penalty grows with memory much more than
    # on AWS (where larger allocations speed up initialisation).
    assert gcp_change > aws_change
