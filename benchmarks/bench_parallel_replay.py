"""Sharded parallel replay throughput: the other N-1 cores.

PR 2 took the single-core replay hot path to ~27k invocations/s; this
target measures how sharded replay (:mod:`repro.parallel`) scales it across
workers.  A 1M-invocation streaming scenario (8 functions × Poisson 50/s)
is replayed twice — ``workers=1`` (the in-process sequential shard backend,
the honest baseline: identical code path minus the process pool) and
``workers=min(4, cpu)`` — and the speedup is recorded in
``benchmarks/BENCH_parallel_replay.json`` with the previous run carried
along.

The scenario recipe is sharded, not a materialised trace: each worker
synthesizes its own shard's arrivals, so parent memory stays O(functions)
and no requests are pickled.  The ≥3x-at-4-workers floor is asserted only
on machines that actually have ≥4 cores (a single-core container cannot
exhibit parallel speedup; the JSON still records the honest measurement).
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path

from conftest import emit_bench_json, run_once

from repro.config import Provider, SimulationConfig
from repro.experiments.base import deploy_benchmark
from repro.simulator.providers import create_platform
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import FunctionTraffic, Scenario

FUNCTIONS = 8
RATE_PER_S = 50.0
TARGET_INVOCATIONS = 1_000_000
DURATION_S = TARGET_INVOCATIONS / (FUNCTIONS * RATE_PER_S)
PARALLEL_WORKERS = max(1, min(4, multiprocessing.cpu_count()))
SPEEDUP_FLOOR = 3.0

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_parallel_replay.json"


def _deployed_platform():
    platform = create_platform(Provider.AWS, SimulationConfig(seed=42, log_retention=128))
    for index in range(FUNCTIONS):
        deploy_benchmark(platform, "dynamic-html", memory_mb=256, function_name=f"fn-{index:02d}")
    return platform


def _scenario() -> Scenario:
    return Scenario(
        name="parallel-replay-1m",
        duration_s=DURATION_S,
        traffic=tuple(
            FunctionTraffic(function_name=f"fn-{index:02d}", process=PoissonArrivals(RATE_PER_S))
            for index in range(FUNCTIONS)
        ),
    )


def test_parallel_replay_speedup_1m(benchmark):
    scenario = _scenario()

    baseline = _deployed_platform().run_workload(
        scenario, keep_records=False, workers=1, backend="sequential"
    )
    parallel = run_once(
        benchmark,
        lambda: _deployed_platform().run_workload(
            scenario, keep_records=False, workers=PARALLEL_WORKERS
        ),
    )

    speedup = baseline.wall_clock_s / parallel.wall_clock_s if parallel.wall_clock_s > 0 else 0.0
    print(
        f"\nsharded replay of {parallel.invocations:,} invocations: "
        f"workers=1 {baseline.wall_clock_s:.2f}s ({baseline.throughput_per_s:,.0f}/s) vs "
        f"workers={PARALLEL_WORKERS} {parallel.wall_clock_s:.2f}s "
        f"({parallel.throughput_per_s:,.0f}/s) => {speedup:.2f}x on "
        f"{multiprocessing.cpu_count()} cores"
    )
    emit_bench_json(
        BENCH_JSON,
        {
            "benchmark": "parallel_replay_streaming_1m",
            "invocations": parallel.invocations,
            "functions": FUNCTIONS,
            "cpu_count": multiprocessing.cpu_count(),
            "workers": PARALLEL_WORKERS,
            "wall_clock_workers1_s": round(baseline.wall_clock_s, 4),
            "wall_clock_parallel_s": round(parallel.wall_clock_s, 4),
            "throughput_workers1_per_s": round(baseline.throughput_per_s, 1),
            "throughput_parallel_per_s": round(parallel.throughput_per_s, 1),
            "speedup": round(speedup, 3),
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_floor_enforced": multiprocessing.cpu_count() >= 4,
        }
    )

    # The two paths must agree exactly — parallelism is not allowed to move
    # a single number (counts/costs are exact-merge statistics).
    assert parallel.invocations == baseline.invocations
    assert parallel.invocations >= TARGET_INVOCATIONS * 0.97
    assert parallel.cold_start_total == baseline.cold_start_total
    assert parallel.total_cost_usd == baseline.total_cost_usd

    if multiprocessing.cpu_count() >= 4 and not os.environ.get("BENCH_SKIP_SPEEDUP_GATE"):
        assert speedup >= SPEEDUP_FLOOR, (
            f"4-worker sharded replay achieved only {speedup:.2f}x over the "
            f"sequential shard backend (floor {SPEEDUP_FLOOR}x)"
        )
