#!/usr/bin/env python
"""Markdown link checker for ``README.md`` and ``docs/*.md`` (CI gate).

Checks, without touching the network:

* every relative link target exists on disk (resolved against the file
  containing the link);
* every intra-repo anchor (``file.md#section`` or ``#section``) matches a
  heading in the target file, using GitHub's slug rules (lowercase,
  spaces to dashes, punctuation dropped);
* bare intra-doc anchors resolve within their own file.

External ``http(s)`` links are listed but not fetched — this repository
never touches the network, and CI must not start for a docs gate.
Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links: [text](target).  Images share the syntax.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ATX headings, used to build the per-file anchor sets.
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks — links inside them are illustrative, not navigation.
FENCE = re.compile(r"^```.*?^```", re.DOTALL | re.MULTILINE)


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, strip punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings keep their text
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        text = FENCE.sub("", path.read_text(encoding="utf-8"))
        cache[path] = {github_slug(match.group(1)) for match in HEADING.finditer(text)}
    return cache[path]


def check_file(path: Path, cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        line = text[: match.start()].count("\n") + 1
        where = f"{path.relative_to(REPO_ROOT)}:{line}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; never fetched
        if target.startswith("#"):
            if github_slug(target[1:]) not in anchors_of(path, cache):
                errors.append(f"{where}: broken intra-doc anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{where}: missing link target {target!r}")
            continue
        if anchor:
            if resolved.suffix != ".md":
                errors.append(f"{where}: anchor on non-markdown target {target!r}")
            elif github_slug(anchor) not in anchors_of(resolved, cache):
                errors.append(f"{where}: broken anchor {target!r}")
    return errors


def main() -> int:
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: file missing")
            continue
        errors.extend(check_file(path, cache))
        checked += 1
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all markdown links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
