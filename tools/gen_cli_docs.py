#!/usr/bin/env python
"""Generate ``docs/cli.md`` from the ``sebs-repro`` argparse definition.

The CLI reference is *generated*, never hand-edited: ``make docs-cli``
rewrites the file from :func:`repro.cli._build_parser`, and ``make docs``
(run by CI) regenerates it and fails on any diff — exactly the
``ci-golden`` pattern, applied to documentation.  Flags therefore cannot
drift from the code that defines them.

Output is deterministic: it depends only on the parser definition (no
timestamps, no environment), so regeneration is a no-op unless the CLI
actually changed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import _build_parser  # noqa: E402

OUTPUT = REPO_ROOT / "docs" / "cli.md"

HEADER = """\
# CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with `make docs-cli`; `make docs` (CI) fails on drift. -->

The `sebs-repro` driver: `PYTHONPATH=src python -m repro.cli <command>`.

## Exit codes

| code | meaning |
| --- | --- |
| 0 | success |
| 1 | unclassified error |
| 2 | invalid configuration (`ConfigurationError`, bad flag combinations) |
| 3 | shard failure after exhausted supervision (`ShardReplayError`) |
| 4 | checkpoint misuse (e.g. `--resume` without `--checkpoint-dir`) |
"""


def _escape(text: str) -> str:
    return text.replace("|", "\\|").replace("\n", " ")


def _flag_cell(action: argparse.Action) -> str:
    if action.option_strings:
        name = ", ".join(f"`{option}`" for option in action.option_strings)
    else:
        name = f"`{action.dest}`"
    metavar = action.metavar
    if metavar is None and action.choices is not None:
        metavar = "{" + ",".join(str(choice) for choice in action.choices) + "}"
    elif metavar is None and action.option_strings and action.nargs != 0 and not isinstance(
        action, (argparse._StoreTrueAction, argparse._StoreFalseAction)
    ):
        metavar = action.dest.upper()
    if metavar and not isinstance(metavar, str):
        metavar = " ".join(str(part) for part in metavar)
    return f"{name} `{metavar}`" if metavar else name


def _default_cell(action: argparse.Action) -> str:
    if isinstance(action, (argparse._StoreTrueAction, argparse._StoreFalseAction)):
        return "off" if isinstance(action, argparse._StoreTrueAction) else "on"
    if not action.option_strings:
        return "required"
    if action.default is None or action.default is argparse.SUPPRESS:
        return "—"
    if isinstance(action.default, (list, tuple)):
        return _escape(" ".join(str(item) for item in action.default)) or "—"
    return _escape(f"`{action.default}`")


def _actions_table(parser: argparse.ArgumentParser) -> list[str]:
    rows = ["| flag | default | description |", "| --- | --- | --- |"]
    count = 0
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction, argparse._SubParsersAction)):
            continue
        rows.append(
            f"| {_flag_cell(action)} | {_default_cell(action)} "
            f"| {_escape(action.help or '')} |"
        )
        count += 1
    return rows if count else []


def render() -> str:
    parser = _build_parser()
    lines = [HEADER]

    global_rows = _actions_table(parser)
    if global_rows:
        lines += ["## Global flags", "", *global_rows, ""]

    subparsers = next(
        action for action in parser._actions if isinstance(action, argparse._SubParsersAction)
    )
    help_by_name = {
        choice.dest: choice.help for choice in subparsers._choices_actions
    }
    lines += ["## Commands", ""]
    lines += ["| command | summary |", "| --- | --- |"]
    for name in subparsers.choices:
        summary = _escape(help_by_name.get(name) or "")
        lines.append(f"| [`{name}`](#{name.replace(' ', '-')}) | {summary} |")
    lines.append("")

    for name, command in subparsers.choices.items():
        lines += [f"## {name}", ""]
        summary = help_by_name.get(name)
        if summary:
            lines += [f"{summary.strip().rstrip('.')}.", ""]
        rows = _actions_table(command)
        if rows:
            lines += [*rows, ""]
        else:
            lines += ["No flags.", ""]

    return "\n".join(lines).rstrip() + "\n"


def main() -> int:
    text = render()
    previous = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else None
    if previous != text:
        OUTPUT.write_text(text, encoding="utf-8")
        print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    else:
        print(f"{OUTPUT.relative_to(REPO_ROOT)} is up to date")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
